package runlimit

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLimitErrorMatching(t *testing.T) {
	var err error = &LimitError{Limit: "max-nodes", Max: 10, Observed: 11}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Error("LimitError should match ErrLimitExceeded")
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "max-nodes" || le.Observed != 11 {
		t.Errorf("errors.As lost fields: %+v", le)
	}
	if !strings.Contains(err.Error(), "max-nodes") {
		t.Errorf("message should name the limit: %q", err.Error())
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) {
		t.Error("LimitError must not match the other causes")
	}
}

func TestContextCause(t *testing.T) {
	if ContextCause(context.Background()) != nil {
		t.Error("live context should have no cause")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !errors.Is(ContextCause(ctx), ErrCanceled) {
		t.Error("canceled context should map to ErrCanceled")
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if !errors.Is(ContextCause(dctx), ErrDeadlineExceeded) {
		t.Error("expired context should map to ErrDeadlineExceeded")
	}
}

func TestIsInterruption(t *testing.T) {
	for _, err := range []error{
		ErrCanceled,
		ErrDeadlineExceeded,
		&LimitError{Limit: "max-rows", Max: 1, Observed: 2},
	} {
		if !IsInterruption(err) {
			t.Errorf("%v should be an interruption", err)
		}
	}
	if IsInterruption(errors.New("boom")) || IsInterruption(nil) {
		t.Error("plain errors and nil are not interruptions")
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, stop := WithTimeout(context.Background(), Limits{})
	defer stop()
	if ctx.Done() != nil {
		t.Error("no timeout must preserve a nil Done channel")
	}
	ctx2, stop2 := WithTimeout(context.Background(), Limits{Timeout: time.Minute})
	defer stop2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Error("timeout should install a deadline")
	}
}

func TestBounded(t *testing.T) {
	if (Limits{}).Bounded() || (Limits{CheckEvery: 5}).Bounded() {
		t.Error("zero limits (or CheckEvery alone) are unbounded")
	}
	if !(Limits{MaxDepth: 1}).Bounded() || !(Limits{Timeout: 1}).Bounded() {
		t.Error("any cap makes Limits bounded")
	}
}
