// Package runlimit defines the resource limits and typed interruption
// causes shared by the parser, the key generators, and the detection
// engine. It sits below both xmltree and core so a single error
// vocabulary (errors.Is/As-matchable) covers every stage of a run.
package runlimit

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Limits bounds a detection run. The zero value means "unlimited" in
// every dimension, which reproduces the paper's unbounded behavior
// exactly; any field may be set independently.
type Limits struct {
	// Timeout caps the wall-clock duration of a run. Applied as a
	// context deadline by the entry points that accept Limits.
	Timeout time.Duration
	// MaxDepth caps element nesting at parse time (the root element
	// counts as depth 1). Exceeding it aborts the parse or streaming
	// key generation with a *LimitError named "max-depth".
	MaxDepth int
	// MaxNodes caps the number of document-order nodes (elements plus
	// significant text nodes, the same numbering Parse assigns IDs to).
	MaxNodes int
	// MaxRows caps the GK rows (candidate instances) recorded per
	// candidate during key generation.
	MaxRows int
	// MaxComparisons caps the distinct pair comparisons performed
	// across all sliding windows of one run, including comparisons the
	// upper-bound filter resolves without an edit-distance computation.
	MaxComparisons int
	// CheckEvery is the hot-loop iteration interval between
	// cancellation/budget checks (default 1024). Smaller values react
	// faster at slightly higher overhead; tests use 1 for determinism.
	CheckEvery int
	// SpillRows downgrades MaxRows from a hard cap to an advisory: the
	// caller has an external-memory spill path that bounds detection
	// memory, so key generation keeps accepting rows instead of failing
	// the run. The engine sets it automatically when a spill threshold
	// is configured; it has no effect on any other limit.
	SpillRows bool
}

// Bounded reports whether any limit besides CheckEvery is set.
func (l Limits) Bounded() bool {
	return l.Timeout > 0 || l.MaxDepth > 0 || l.MaxNodes > 0 || l.MaxRows > 0 || l.MaxComparisons > 0
}

// CheckRows enforces MaxRows for one candidate's observed row count.
// With SpillRows set the cap is waived — the spill path bounds memory
// instead, so a table larger than MaxRows is no longer a failure.
func (l Limits) CheckRows(observed int) error {
	if l.MaxRows > 0 && !l.SpillRows && observed > l.MaxRows {
		return &LimitError{Limit: "max-rows", Max: l.MaxRows, Observed: observed}
	}
	return nil
}

// Interruption causes. Run entry points return these (or a wrapping
// error) alongside a partial result; match with errors.Is.
var (
	// ErrCanceled reports that the run's context was canceled.
	ErrCanceled = errors.New("run canceled")
	// ErrDeadlineExceeded reports that the run's deadline (context or
	// Limits.Timeout) expired.
	ErrDeadlineExceeded = errors.New("run deadline exceeded")
	// ErrLimitExceeded is the errors.Is target every *LimitError
	// matches; the concrete error names the breached limit.
	ErrLimitExceeded = errors.New("resource limit exceeded")
)

// LimitError reports which resource limit a run breached and the value
// observed when it tripped. It matches ErrLimitExceeded via errors.Is.
type LimitError struct {
	Limit    string // "max-depth", "max-nodes", "max-rows", "max-comparisons"
	Max      int
	Observed int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s limit exceeded (observed %d, max %d)", e.Limit, e.Observed, e.Max)
}

// Is makes errors.Is(err, ErrLimitExceeded) true for every LimitError.
func (e *LimitError) Is(target error) bool { return target == ErrLimitExceeded }

// IsInterruption reports whether err is a graceful-degradation cause
// (cancellation, deadline, or limit breach) rather than a hard failure.
func IsInterruption(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrLimitExceeded)
}

// ContextCause translates the context's state into the typed causes
// above, or nil while the context is still live.
func ContextCause(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadlineExceeded
	default:
		return ErrCanceled
	}
}

// WithTimeout derives a context carrying l.Timeout as a deadline. With
// no timeout set it returns ctx unchanged (preserving a nil Done
// channel, which lets unbounded runs skip cancellation checks
// entirely). The returned stop function must always be called.
func WithTimeout(ctx context.Context, l Limits) (context.Context, context.CancelFunc) {
	if l.Timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, l.Timeout)
}
