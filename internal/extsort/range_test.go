package extsort

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// sortedCorpus writes a shuffled string corpus through a Sorter and
// returns its runs plus the expected merged order.
func sortedCorpus(t *testing.T, dir string, n, maxInMemory int, seed int64) (Config[string], []RunFile, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]string, n)
	for i := range recs {
		recs[i] = fmt.Sprintf("rec-%04d", rng.Intn(n*2))
	}
	cfg := stringConfig(dir, maxInMemory)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), recs...)
	sort.Strings(want)
	return cfg, runs, want
}

// TestMergeRunsRangeSlices checks [lo, hi) against the full merged
// order for a spread of ranges, including empty, prefix, suffix, and
// whole-stream ranges, across several run layouts.
func TestMergeRunsRangeSlices(t *testing.T) {
	for _, maxInMemory := range []int{1, 3, 7, 1000} {
		t.Run(fmt.Sprintf("maxInMemory=%d", maxInMemory), func(t *testing.T) {
			cfg, runs, want := sortedCorpus(t, t.TempDir(), 60, maxInMemory, 7)
			n := int64(len(want))
			ranges := [][2]int64{{0, 0}, {0, n}, {0, 1}, {n - 1, n}, {n, n}, {5, 5}, {3, 17}, {n / 2, n}, {0, n / 2}}
			for _, r := range ranges {
				it, err := MergeRunsRange(cfg, runs, r[0], r[1])
				if err != nil {
					t.Fatalf("range [%d,%d): %v", r[0], r[1], err)
				}
				got := drain(t, it)
				it.Close()
				if int64(len(got)) != r[1]-r[0] {
					t.Fatalf("range [%d,%d): got %d records", r[0], r[1], len(got))
				}
				for i, rec := range got {
					if rec != want[r[0]+int64(i)] {
						t.Fatalf("range [%d,%d) record %d = %q, want %q", r[0], r[1], i, rec, want[r[0]+int64(i)])
					}
				}
			}
		})
	}
}

// TestMergeRunsRangePartition proves the sharding invariant directly:
// chopping [0, n) into random contiguous ranges and concatenating the
// streams reproduces the full merge exactly.
func TestMergeRunsRangePartition(t *testing.T) {
	cfg, runs, want := sortedCorpus(t, t.TempDir(), 80, 5, 11)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		cuts := []int64{0, int64(len(want))}
		for i := 0; i < rng.Intn(6); i++ {
			cuts = append(cuts, int64(rng.Intn(len(want)+1)))
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
		var got []string
		for i := 0; i+1 < len(cuts); i++ {
			it, err := MergeRunsRange(cfg, runs, cuts[i], cuts[i+1])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, drain(t, it)...)
			it.Close()
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: partition %v yielded %d records, want %d", trial, cuts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d = %q, want %q", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMergeRunsRangeInvalid(t *testing.T) {
	cfg, runs, want := sortedCorpus(t, t.TempDir(), 10, 4, 3)
	n := int64(len(want))
	for _, r := range [][2]int64{{-1, 2}, {4, 3}, {0, n + 1}, {n + 1, n + 2}} {
		if _, err := MergeRunsRange(cfg, runs, r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d) over %d records: want error", r[0], r[1], n)
		}
	}
}

// A corrupt record is caught even when it lies in the skipped prefix:
// range readers verify everything they pass over, not just what they
// yield.
func TestMergeRunsRangeCorruptPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg, runs, want := sortedCorpus(t, dir, 40, 1000, 5) // single run
	path := filepath.Join(dir, runs[0].Name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(runMagic)+8] ^= 0x40 // flip a bit in an early record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	it, err := MergeRunsRange(cfg, runs, int64(len(want))-2, int64(len(want)))
	if err == nil {
		_, _, err = it.Next()
		it.Close()
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt skipped record: err = %v, want ErrCorrupt", err)
	}
}

// Finish exposes the runs without consuming the sort, so several
// readers can be opened over the same files.
func TestSorterFinishMultipleReaders(t *testing.T) {
	cfg, runs, want := sortedCorpus(t, t.TempDir(), 30, 4, 9)
	a, err := MergeRuns(cfg, runs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := MergeRunsRange(cfg, runs, 0, int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ga, gb := drain(t, a), drain(t, b)
	if len(ga) != len(want) || len(gb) != len(want) {
		t.Fatalf("reader lengths %d/%d, want %d", len(ga), len(gb), len(want))
	}
	for i := range want {
		if ga[i] != want[i] || gb[i] != want[i] {
			t.Fatalf("record %d: %q / %q, want %q", i, ga[i], gb[i], want[i])
		}
	}
}
