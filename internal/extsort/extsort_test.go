package extsort

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// stringConfig is the codec used throughout the tests: records are
// plain strings, ordered bytewise.
func stringConfig(dir string, maxInMemory int) Config[string] {
	return Config[string]{
		Dir:         dir,
		Prefix:      "t",
		MaxInMemory: maxInMemory,
		Encode:      func(dst []byte, rec string) []byte { return append(dst, rec...) },
		Decode:      func(payload []byte) (string, error) { return string(payload), nil },
		Less:        func(a, b string) bool { return a < b },
	}
}

// drain pulls every record out of the iterator.
func drain[T any](t *testing.T, it *Iterator[T]) []T {
	t.Helper()
	var out []T
	for {
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

func TestSortRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var recs []string
	for i := 0; i < 100; i++ {
		n := rng.Intn(12)
		b := make([]byte, n)
		rng.Read(b)
		recs = append(recs, string(b))
	}
	recs = append(recs, "", "", "dup", "dup") // empty and duplicate payloads
	want := append([]string(nil), recs...)
	sort.Strings(want)

	for _, threshold := range []int{1, 2, 3, 7, 1000} {
		t.Run(fmt.Sprintf("maxInMemory=%d", threshold), func(t *testing.T) {
			s, err := New(stringConfig(t.TempDir(), threshold))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if err := s.Add(r); err != nil {
					t.Fatal(err)
				}
			}
			it, runs, err := s.Merge()
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			got := drain(t, it)
			if len(got) != len(want) {
				t.Fatalf("got %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
				}
			}
			wantRuns := (len(recs) + threshold - 1) / threshold
			if len(runs) != wantRuns || s.Stats().RunsWritten != wantRuns {
				t.Errorf("runs = %d (stats %d), want %d", len(runs), s.Stats().RunsWritten, wantRuns)
			}
			if s.Stats().Records != int64(len(recs)) {
				t.Errorf("stats records = %d, want %d", s.Stats().Records, len(recs))
			}
			if it.BytesRead() <= 0 {
				t.Errorf("BytesRead = %d, want > 0", it.BytesRead())
			}
		})
	}
}

func TestEmptyInput(t *testing.T) {
	s, err := New(stringConfig(t.TempDir(), 4))
	if err != nil {
		t.Fatal(err)
	}
	it, runs, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if got := drain(t, it); len(got) != 0 {
		t.Fatalf("empty sort yielded %d records", len(got))
	}
	if len(runs) != 0 {
		t.Fatalf("empty sort wrote %d runs", len(runs))
	}
}

func TestInvalidConfig(t *testing.T) {
	bad := []Config[string]{
		{},
		{Dir: "x", MaxInMemory: 0},
		{Dir: "x", MaxInMemory: 1}, // missing codec
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New accepted an invalid configuration", i)
		}
	}
}

// TestStableTieBreak checks the determinism contract: records that
// compare equal come out in run-index order, which for one record per
// run is insertion order — exactly what sort.SliceStable would produce.
func TestStableTieBreak(t *testing.T) {
	type rec struct{ K, ID string }
	cfg := Config[rec]{
		Dir:         t.TempDir(),
		Prefix:      "t",
		MaxInMemory: 1, // one record per run: run index == insertion order
		Encode: func(dst []byte, r rec) []byte {
			dst = append(dst, byte(len(r.K)))
			dst = append(dst, r.K...)
			return append(dst, r.ID...)
		},
		Decode: func(p []byte) (rec, error) {
			n := int(p[0])
			return rec{K: string(p[1 : 1+n]), ID: string(p[1+n:])}, nil
		},
		Less: func(a, b rec) bool { return a.K < b.K },
	}
	in := []rec{{"b", "0"}, {"a", "1"}, {"b", "2"}, {"a", "3"}, {"a", "4"}}
	want := append([]rec(nil), in...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].K < want[j].K })

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range in {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, _, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := drain(t, it)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v (merge must match the stable sort)", i, got[i], want[i])
		}
	}
}

// writeRuns produces a small on-disk sort to corrupt: two runs over
// dir, returning the run metadata and the merged reference output.
func writeRuns(t *testing.T, dir string) ([]RunFile, []string) {
	t.Helper()
	s, err := New(stringConfig(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"delta", "alpha", "echo", "bravo", "", "charlie"} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, runs, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	return runs, drain(t, it)
}

// mergeAll re-opens the runs and streams them to the end, returning
// the first error.
func mergeAll(dir string, runs []RunFile) ([]string, error) {
	it, err := MergeRuns(stringConfig(dir, 3), runs)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []string
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// TestCorruptionEveryByteFlip flips every single byte of every run
// file in turn and demands a typed corruption error — never a wrong
// record sequence. This is the package's central promise.
func TestCorruptionEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	runs, want := writeRuns(t, dir)
	for _, rf := range runs {
		path := filepath.Join(dir, rf.Name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := range orig {
			for _, flip := range []byte{0x01, 0x80, 0xFF} {
				mut := append([]byte(nil), orig...)
				mut[off] ^= flip
				if err := os.WriteFile(path, mut, 0o644); err != nil {
					t.Fatal(err)
				}
				got, err := mergeAll(dir, runs)
				if err == nil {
					t.Fatalf("%s: flipping byte %d with %#x went undetected (got %d records)",
						rf.Name, off, flip, len(got))
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s: flip at byte %d: error is not ErrCorrupt: %v", rf.Name, off, err)
				}
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Restored files still merge to the reference output.
	got, err := mergeAll(dir, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored merge has %d records, want %d", len(got), len(want))
	}
}

// TestCorruptionEveryTruncation truncates each run file at every
// possible length and demands a typed corruption error.
func TestCorruptionEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	runs, _ := writeRuns(t, dir)
	for _, rf := range runs {
		path := filepath.Join(dir, rf.Name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(orig); cut++ {
			if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := mergeAll(dir, runs); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s truncated to %d bytes: want ErrCorrupt, got %v", rf.Name, cut, err)
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptionTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	runs, _ := writeRuns(t, dir)
	path := filepath.Join(dir, runs[0].Name)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte(nil), orig...), 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeAll(dir, runs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: want ErrCorrupt, got %v", err)
	}
}

// TestManifestMismatch verifies that runs are cross-checked against
// the caller's RunFile metadata — a manifest pointing at the wrong
// (but internally consistent) file is corruption, not a wrong answer.
func TestManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	runs, _ := writeRuns(t, dir)
	for name, mutate := range map[string]func(RunFile) RunFile{
		"records": func(rf RunFile) RunFile { rf.Records++; return rf },
		"crc":     func(rf RunFile) RunFile { rf.CRC ^= 0xDEAD; return rf },
	} {
		t.Run(name, func(t *testing.T) {
			bad := append([]RunFile(nil), runs...)
			bad[0] = mutate(bad[0])
			if _, err := mergeAll(dir, bad); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

func TestMissingRunFile(t *testing.T) {
	dir := t.TempDir()
	runs, _ := writeRuns(t, dir)
	if err := os.Remove(filepath.Join(dir, runs[1].Name)); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeAll(dir, runs); err == nil {
		t.Fatal("missing run file went undetected")
	}
}

func TestRecordSizeCap(t *testing.T) {
	dir := t.TempDir()
	cfg := stringConfig(dir, 2)
	cfg.MaxRecordBytes = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"ok", "fine"} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, runs, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	it.Close()
	// A reader with a smaller cap rejects the same records up front.
	tight := stringConfig(dir, 2)
	tight.MaxRecordBytes = 1
	it2, err := MergeRuns(tight, runs)
	if err == nil {
		defer it2.Close()
		_, _, err = it2.Next()
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized record: want ErrCorrupt, got %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "cap") {
		t.Fatalf("error should name the cap: %v", err)
	}
}
