// Package faultfs wraps an extsort.FS with deterministic fault
// injection for the spill layer's crash-safety tests. A step counter
// advances on every counted operation (writes in FailWrite mode, reads
// in TruncateRead mode); when it reaches the armed step the fault
// fires and stays latched for the rest of the run. Sweeping the armed
// step across the range reported by Steps() exercises a failure at
// every I/O boundary of a run — the harness asserts each such run
// either errors with a typed cause or produces byte-identical output,
// never a silently wrong answer.
package faultfs

import (
	"errors"
	"io"
	"sync/atomic"

	"repro/internal/extsort"
)

// ErrInjected is the typed cause of every fault this package fires.
var ErrInjected = errors.New("faultfs: injected fault")

// Mode selects which operation class the fault targets.
type Mode int

const (
	// FailWrite makes the armed write (and everything after it) write
	// only the first half of its buffer and return ErrInjected — a torn
	// write followed by persistent failure.
	FailWrite Mode = iota
	// TruncateRead makes the armed read return at most half the
	// requested bytes and every later read report io.EOF — a silently
	// truncated file, the short-read case run-file checksums and
	// footers must catch. No error is surfaced by the FS itself; if
	// the reader misses the truncation, it gets wrong bytes.
	TruncateRead
)

// FS decorates an inner extsort.FS with one armed fault. armAt <= 0
// never fires. Safe for concurrent use.
type FS struct {
	inner extsort.FS
	mode  Mode
	armAt int64
	steps atomic.Int64
	fired atomic.Bool
}

// New arms a fault of the given mode at the armAt'th counted
// operation (1-based).
func New(inner extsort.FS, mode Mode, armAt int64) *FS {
	return &FS{inner: inner, mode: mode, armAt: armAt}
}

// Steps reports how many operations of the armed class ran; a clean
// pass with armAt=0 sizes an exhaustive fault sweep.
func (f *FS) Steps() int64 { return f.steps.Load() }

// Fired reports whether the armed fault triggered.
func (f *FS) Fired() bool { return f.fired.Load() }

func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }
func (f *FS) Remove(name string) error  { return f.inner.Remove(name) }

func (f *FS) Create(name string) (io.WriteCloser, error) {
	w, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, w: w}, nil
}

func (f *FS) Open(name string) (io.ReadCloser, error) {
	r, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, r: r}, nil
}

type file struct {
	fs *FS
	w  io.WriteCloser
	r  io.ReadCloser
}

func (fl *file) Write(p []byte) (int, error) {
	f := fl.fs
	if f.mode == FailWrite {
		// Steps are counted even unarmed so a clean armAt=0 run sizes an
		// exhaustive sweep; the fault itself fires only when armed.
		if f.armAt > 0 && f.fired.Load() {
			return 0, ErrInjected
		}
		if step := f.steps.Add(1); f.armAt > 0 && step >= f.armAt {
			f.fired.Store(true)
			n, _ := fl.w.Write(p[:len(p)/2])
			return n, ErrInjected
		}
	}
	return fl.w.Write(p)
}

func (fl *file) Read(p []byte) (int, error) {
	f := fl.fs
	if f.mode == TruncateRead {
		if f.armAt > 0 && f.fired.Load() {
			return 0, io.EOF
		}
		if step := f.steps.Add(1); f.armAt > 0 && step >= f.armAt {
			f.fired.Store(true)
			half := len(p) / 2
			if half == 0 {
				return 0, io.EOF
			}
			n, err := fl.r.Read(p[:half])
			if err != nil {
				return n, io.EOF
			}
			return n, nil
		}
	}
	return fl.r.Read(p)
}

func (fl *file) Close() error {
	if fl.w != nil {
		return fl.w.Close()
	}
	return fl.r.Close()
}
