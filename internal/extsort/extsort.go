// Package extsort implements a generic external merge sort: records
// are buffered in memory up to a configured bound, sorted runs are
// spilled to checksummed run files, and a k-way heap merge streams
// them back in global order. The package makes one hard promise:
// corrupt run files produce typed errors (*CorruptError, matchable
// with errors.Is(err, ErrCorrupt)), never silently wrong records.
// Every record carries its own CRC32, verified before it is decoded,
// and each run file ends in a count + whole-run checksum footer, so
// bit flips, torn writes, and silent truncation are all caught.
//
// Run files use a compact framed format:
//
//	header   8-byte magic "SXNMRUN1"
//	record   uvarint(len(payload)+1) | crc32(payload) LE | payload
//	footer   uvarint 0 | uvarint(record count) | crc32(all payloads) LE
//
// The +1 on the length keeps zero-length payloads representable while
// reserving the single zero byte as the footer marker.
package extsort

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FS abstracts the filesystem run files live on so tests can inject
// faults (torn writes, silently truncated reads) without touching real
// I/O. A nil Config.FS means the real filesystem (OSFS).
type FS interface {
	MkdirAll(dir string) error
	Create(name string) (io.WriteCloser, error)
	Open(name string) (io.ReadCloser, error)
	Remove(name string) error
}

type osFS struct{}

func (osFS) MkdirAll(dir string) error                  { return os.MkdirAll(dir, 0o755) }
func (osFS) Create(name string) (io.WriteCloser, error) { return os.Create(name) }
func (osFS) Open(name string) (io.ReadCloser, error)    { return os.Open(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }

// ReadDir lists the file names in dir; see DirLister.
func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

// DirLister is the optional FS extension that lists a directory's
// files; the spill layer uses it to sweep orphaned run files left by a
// crashed process. An FS without it simply skips the sweep.
type DirLister interface {
	ReadDir(dir string) ([]string, error)
}

// ErrCorrupt matches (via errors.Is) every way a run file can be bad:
// missing or wrong magic, torn or bit-flipped records, truncation,
// record-count or checksum mismatches, trailing garbage, records that
// fail to decode, and run-internal sort-order violations.
var ErrCorrupt = errors.New("extsort: corrupt run file")

// CorruptError pinpoints what was wrong with which run file.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("extsort: corrupt run file %s: %s", e.Path, e.Reason)
}

func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

const (
	runMagic              = "SXNMRUN1"
	defaultMaxRecordBytes = 64 << 20
)

// Config parameterizes one external sort. Encode and Decode define the
// record codec; Decode must not retain the payload slice (it is
// reused between records). Less must be a strict weak ordering; for
// byte-identical merged output it should be a total order — records
// that compare equal both ways keep only their run-index order.
type Config[T any] struct {
	// Dir receives the run files; created if missing.
	Dir string
	// Prefix names this sort's run files: <Prefix>-r<N>.run.
	Prefix string
	// MaxInMemory bounds the records buffered before a sorted run is
	// spilled — the sort's working-set bound. Must be positive.
	MaxInMemory int
	// MaxRecordBytes caps one record's payload so a corrupt length
	// prefix is rejected before any allocation. 0 means 64 MiB.
	MaxRecordBytes int
	// FS is the filesystem run files live on; nil means the real one.
	FS     FS
	Encode func(dst []byte, rec T) []byte
	Decode func(payload []byte) (T, error)
	Less   func(a, b T) bool
}

func (c *Config[T]) normalize() error {
	if c.Dir == "" || c.MaxInMemory <= 0 || c.Encode == nil || c.Decode == nil || c.Less == nil {
		return errors.New("extsort: Config needs Dir, MaxInMemory > 0, Encode, Decode, and Less")
	}
	if c.FS == nil {
		c.FS = OSFS()
	}
	if c.MaxRecordBytes <= 0 {
		c.MaxRecordBytes = defaultMaxRecordBytes
	}
	return nil
}

// RunFile describes one written run, as recorded in spill manifests.
// Name is relative to Config.Dir so directories can move between
// processes; Records, CRC, and Bytes are cross-checked against the
// file's own footer when the run is read back.
type RunFile struct {
	Name    string `json:"name"`
	Records int64  `json:"records"`
	CRC     uint32 `json:"crc"`
	Bytes   int64  `json:"bytes"`
}

// Stats counts a Sorter's spill work.
type Stats struct {
	RunsWritten  int
	Records      int64
	BytesWritten int64
}

// Sorter accumulates records and spills sorted runs. Typical use:
// Add every record, then Merge to stream them back in order.
type Sorter[T any] struct {
	cfg     Config[T]
	buf     []T
	scratch []byte
	runs    []RunFile
	stats   Stats
	err     error
}

// New validates the configuration, creates the run directory, and
// returns an empty Sorter.
func New[T any](cfg Config[T]) (*Sorter[T], error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("extsort: create %s: %w", cfg.Dir, err)
	}
	return &Sorter[T]{cfg: cfg, buf: make([]T, 0, cfg.MaxInMemory)}, nil
}

// Add buffers one record, spilling a sorted run once MaxInMemory
// records are pending. Errors are sticky.
func (s *Sorter[T]) Add(rec T) error {
	if s.err != nil {
		return s.err
	}
	s.buf = append(s.buf, rec)
	if len(s.buf) >= s.cfg.MaxInMemory {
		return s.spill()
	}
	return nil
}

func (s *Sorter[T]) spill() error {
	sort.Slice(s.buf, func(i, j int) bool { return s.cfg.Less(s.buf[i], s.buf[j]) })
	name := fmt.Sprintf("%s-r%04d.run", s.cfg.Prefix, len(s.runs))
	rf, err := s.writeRun(name)
	if err != nil {
		s.err = err
		return err
	}
	s.runs = append(s.runs, rf)
	s.stats.RunsWritten++
	s.stats.Records += rf.Records
	s.stats.BytesWritten += rf.Bytes
	s.buf = s.buf[:0]
	return nil
}

func (s *Sorter[T]) writeRun(name string) (RunFile, error) {
	path := filepath.Join(s.cfg.Dir, name)
	f, err := s.cfg.FS.Create(path)
	if err != nil {
		return RunFile{}, fmt.Errorf("extsort: create run %s: %w", path, err)
	}
	cw := &countWriter{w: f}
	w := bufio.NewWriter(cw)
	crc := crc32.NewIEEE()
	var frame [binary.MaxVarintLen64]byte
	var sum [4]byte
	fail := func(err error) (RunFile, error) {
		f.Close()
		return RunFile{}, fmt.Errorf("extsort: write run %s: %w", path, err)
	}
	if _, err := w.WriteString(runMagic); err != nil {
		return fail(err)
	}
	for _, rec := range s.buf {
		s.scratch = s.cfg.Encode(s.scratch[:0], rec)
		n := binary.PutUvarint(frame[:], uint64(len(s.scratch))+1)
		binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(s.scratch))
		if _, err := w.Write(frame[:n]); err != nil {
			return fail(err)
		}
		if _, err := w.Write(sum[:]); err != nil {
			return fail(err)
		}
		if _, err := w.Write(s.scratch); err != nil {
			return fail(err)
		}
		crc.Write(s.scratch)
	}
	if err := w.WriteByte(0); err != nil { // footer marker: uvarint 0
		return fail(err)
	}
	n := binary.PutUvarint(frame[:], uint64(len(s.buf)))
	if _, err := w.Write(frame[:n]); err != nil {
		return fail(err)
	}
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return RunFile{}, fmt.Errorf("extsort: close run %s: %w", path, err)
	}
	return RunFile{Name: name, Records: int64(len(s.buf)), CRC: crc.Sum32(), Bytes: cw.n}, nil
}

// Finish spills any buffered tail as a final run and returns the run
// metadata without opening a merge. Callers that want several
// independent readers over the same sort — range readers for sharded
// sweeps, say — Finish once and then open each reader with MergeRuns
// or MergeRunsRange. The Sorter must not be Added to afterwards.
func (s *Sorter[T]) Finish() ([]RunFile, error) {
	if s.err != nil {
		return nil, s.err
	}
	if len(s.buf) > 0 {
		if err := s.spill(); err != nil {
			return nil, err
		}
	}
	return s.runs, nil
}

// Merge spills any buffered tail as a final run and returns an
// Iterator merging every run, plus the run metadata a caller may
// record in a manifest for later MergeRuns reuse. The Sorter must not
// be Added to afterwards.
func (s *Sorter[T]) Merge() (*Iterator[T], []RunFile, error) {
	runs, err := s.Finish()
	if err != nil {
		return nil, nil, err
	}
	it, err := MergeRuns(s.cfg, runs)
	if err != nil {
		return nil, nil, err
	}
	return it, runs, nil
}

// Stats returns the spill counters accumulated so far.
func (s *Sorter[T]) Stats() Stats { return s.stats }

// Discard removes every run file the Sorter has written and drops the
// buffered tail, releasing the sort's disk footprint. Call it when a
// sort is abandoned before its runs were handed to a caller — an
// interrupted or failed Add/Merge — so a canceled run leaves no
// orphaned files behind. Safe after a sticky error and idempotent;
// the Sorter must not be used afterwards. Returns the first removal
// error, if any (the remaining files are still attempted).
func (s *Sorter[T]) Discard() error {
	var first error
	for _, rf := range s.runs {
		if err := s.cfg.FS.Remove(filepath.Join(s.cfg.Dir, rf.Name)); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	s.buf = nil
	if s.err == nil {
		s.err = errors.New("extsort: sorter discarded")
	}
	return first
}

// MergeRuns opens previously written run files and k-way merges them —
// the reuse path for fingerprinted runs surviving from an earlier
// process. Each reader verifies framing, per-record checksums, the
// footer's count and whole-run checksum, the caller's RunFile
// metadata, and run-internal sort order while streaming; any violation
// is a *CorruptError. Ties between runs break by run index, so the
// merged order is fully deterministic whenever Less is a total order.
func MergeRuns[T any](cfg Config[T], runs []RunFile) (*Iterator[T], error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	it := &Iterator[T]{cfg: cfg}
	for _, rf := range runs {
		src, err := newRunReader(&it.cfg, rf)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.srcs = append(it.srcs, src)
	}
	for i, src := range it.srcs {
		rec, ok, err := src.next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if ok {
			it.h = append(it.h, heapEntry[T]{rec: rec, src: i})
			it.up(len(it.h) - 1)
		}
	}
	return it, nil
}

// MergeRunsRange opens the same k-way merge as MergeRuns but yields
// only the half-open slice [lo, hi) of the merged record sequence —
// the primitive that lets shards of one sorted table stream their row
// ranges from a single set of run files without rematerializing the
// sort. The skipped prefix is still framed, CRC-checked, decoded, and
// order-verified record by record (integrity is not range-dependent);
// the one verification a range reader gives up is the footer of any
// run it never drains — stopping early is the point, and the full-pass
// reader over the same runs still checks every footer. The range is
// validated against the manifest record counts; an out-of-bounds or
// inverted range is an error, not a clamp.
func MergeRunsRange[T any](cfg Config[T], runs []RunFile, lo, hi int64) (*Iterator[T], error) {
	var total int64
	for _, rf := range runs {
		total += rf.Records
	}
	if lo < 0 || hi < lo || hi > total {
		return nil, fmt.Errorf("extsort: invalid merge range [%d, %d) over %d records", lo, hi, total)
	}
	it, err := MergeRuns(cfg, runs)
	if err != nil {
		return nil, err
	}
	for skipped := int64(0); skipped < lo; skipped++ {
		_, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			// Unreachable unless a run holds fewer records than its
			// verified manifest entry claims; surface it as corruption
			// rather than a silent short range.
			it.Close()
			return nil, &CorruptError{Path: cfg.Dir, Reason: fmt.Sprintf(
				"merged stream ended after %d records, manifest promised %d", skipped, total)}
		}
	}
	it.limited = true
	it.remain = hi - lo
	return it, nil
}

// heapEntry is one merge-heap slot: the head record of source src.
type heapEntry[T any] struct {
	rec T
	src int
}

// Iterator streams the merged record sequence. Errors are sticky: the
// first corruption or read failure poisons the rest of the stream.
type Iterator[T any] struct {
	cfg    Config[T]
	srcs   []*runReader[T]
	h      []heapEntry[T]
	err    error
	closed bool
	// limited/remain implement MergeRunsRange: when limited, Next ends
	// the stream cleanly once remain records have been yielded.
	limited bool
	remain  int64
}

// entryLess is the heap order: Less on records, run index on ties —
// a strict total order as long as no two entries share a src.
func (it *Iterator[T]) entryLess(a, b heapEntry[T]) bool {
	if it.cfg.Less(a.rec, b.rec) {
		return true
	}
	if it.cfg.Less(b.rec, a.rec) {
		return false
	}
	return a.src < b.src
}

func (it *Iterator[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !it.entryLess(it.h[i], it.h[p]) {
			break
		}
		it.h[i], it.h[p] = it.h[p], it.h[i]
		i = p
	}
}

func (it *Iterator[T]) down(i int) {
	n := len(it.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && it.entryLess(it.h[r], it.h[l]) {
			m = r
		}
		if !it.entryLess(it.h[m], it.h[i]) {
			return
		}
		it.h[i], it.h[m] = it.h[m], it.h[i]
		i = m
	}
}

// Next returns the globally smallest remaining record; the bool is
// false at a clean end of stream.
func (it *Iterator[T]) Next() (T, bool, error) {
	var zero T
	if it.err != nil {
		return zero, false, it.err
	}
	if it.limited && it.remain == 0 {
		return zero, false, nil
	}
	if len(it.h) == 0 {
		return zero, false, nil
	}
	top := it.h[0]
	rec, ok, err := it.srcs[top.src].next()
	if err != nil {
		it.err = err
		return zero, false, err
	}
	if ok {
		it.h[0] = heapEntry[T]{rec: rec, src: top.src}
	} else {
		last := len(it.h) - 1
		it.h[0] = it.h[last]
		it.h = it.h[:last]
	}
	if len(it.h) > 0 {
		it.down(0)
	}
	if it.limited {
		it.remain--
	}
	return top.rec, true, nil
}

// BytesRead totals the bytes consumed from run files so far.
func (it *Iterator[T]) BytesRead() int64 {
	var n int64
	for _, s := range it.srcs {
		n += s.cr.n
	}
	return n
}

// Close releases every run-file handle. Safe to call more than once.
func (it *Iterator[T]) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	var first error
	for _, s := range it.srcs {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	it.h = nil
	return first
}

// runReader streams and verifies one run file.
type runReader[T any] struct {
	cfg     *Config[T]
	rf      RunFile
	path    string
	f       io.ReadCloser
	cr      *countReader
	br      *bufio.Reader
	buf     []byte
	crc     uint32 // running whole-run CRC (crc32.Update)
	seen    int64
	prev    T
	hasPrev bool
	done    bool
}

func newRunReader[T any](cfg *Config[T], rf RunFile) (*runReader[T], error) {
	path := filepath.Join(cfg.Dir, rf.Name)
	f, err := cfg.FS.Open(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: open run %s: %w", path, err)
	}
	cr := &countReader{r: f}
	r := &runReader[T]{cfg: cfg, rf: rf, path: path, f: f, cr: cr, br: bufio.NewReader(cr)}
	var magic [len(runMagic)]byte
	if _, err := io.ReadFull(r.br, magic[:]); err != nil {
		f.Close()
		return nil, r.readErr("missing or short header", err)
	}
	if string(magic[:]) != runMagic {
		f.Close()
		return nil, r.corrupt("bad magic")
	}
	return r, nil
}

func (r *runReader[T]) corrupt(reason string) error {
	return &CorruptError{Path: r.path, Reason: reason}
}

// readErr classifies a read failure: EOF-shaped errors mean the file
// ended where records should be — corruption — while anything else is
// a genuine I/O error, wrapped with the run path.
func (r *runReader[T]) readErr(context string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return r.corrupt(context)
	}
	return fmt.Errorf("extsort: read run %s: %w", r.path, err)
}

func (r *runReader[T]) next() (T, bool, error) {
	var zero T
	if r.done {
		return zero, false, nil
	}
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		if strings.Contains(err.Error(), "overflow") {
			return zero, false, r.corrupt("length varint overflows")
		}
		return zero, false, r.readErr("truncated before footer", err)
	}
	if n == 0 {
		return zero, false, r.finish()
	}
	size := n - 1
	if size > uint64(r.cfg.MaxRecordBytes) {
		return zero, false, r.corrupt(fmt.Sprintf("record of %d bytes exceeds the %d-byte cap", size, r.cfg.MaxRecordBytes))
	}
	var sum [4]byte
	if _, err := io.ReadFull(r.br, sum[:]); err != nil {
		return zero, false, r.readErr("torn record header", err)
	}
	if uint64(cap(r.buf)) < size {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return zero, false, r.readErr("torn record payload", err)
	}
	if crc32.ChecksumIEEE(r.buf) != binary.LittleEndian.Uint32(sum[:]) {
		return zero, false, r.corrupt(fmt.Sprintf("record %d checksum mismatch", r.seen))
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, r.buf)
	rec, err := r.cfg.Decode(r.buf)
	if err != nil {
		return zero, false, r.corrupt(fmt.Sprintf("record %d decode: %v", r.seen, err))
	}
	if r.hasPrev && r.cfg.Less(rec, r.prev) {
		return zero, false, r.corrupt(fmt.Sprintf("record %d out of order", r.seen))
	}
	r.prev, r.hasPrev = rec, true
	r.seen++
	return rec, true, nil
}

// finish verifies the footer against both the streamed content and the
// caller's RunFile metadata, and requires a clean EOF after it.
func (r *runReader[T]) finish() error {
	count, err := binary.ReadUvarint(r.br)
	if err != nil {
		return r.readErr("truncated footer", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r.br, sum[:]); err != nil {
		return r.readErr("truncated footer", err)
	}
	if int64(count) != r.seen {
		return r.corrupt(fmt.Sprintf("footer count %d, read %d records", count, r.seen))
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != r.crc {
		return r.corrupt("whole-run checksum mismatch")
	}
	if r.rf.Records != r.seen || r.rf.CRC != r.crc {
		return r.corrupt(fmt.Sprintf("run does not match its manifest entry (%d records crc %08x, manifest says %d crc %08x)",
			r.seen, r.crc, r.rf.Records, r.rf.CRC))
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		if err != nil {
			return r.readErr("trailing bytes after footer", err)
		}
		return r.corrupt("trailing bytes after footer")
	}
	r.done = true
	return nil
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
