package extsort

import (
	"testing"
)

// FuzzMergeInvariants feeds arbitrary byte strings through a full
// spill-and-merge cycle and checks the two invariants every external
// sort must keep: the output is sorted under Less, and it is exactly
// the input multiset — nothing dropped, duplicated, or invented.
func FuzzMergeInvariants(f *testing.F) {
	f.Add([]byte{1, 'b', 0, 'a', 0, 'c'})
	f.Add([]byte{3, 'z', 'z', 0, 0, 'z', 'z', 0, 1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		threshold := 1
		if len(data) > 0 {
			threshold = int(data[0])%16 + 1
			data = data[1:]
		}
		// Split the remainder into records on zero bytes; records may be
		// empty and may repeat.
		var recs []string
		start := 0
		for i, b := range data {
			if b == 0 {
				recs = append(recs, string(data[start:i]))
				start = i + 1
			}
		}
		recs = append(recs, string(data[start:]))

		s, err := New(stringConfig(t.TempDir(), threshold))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		it, _, err := s.Merge()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()

		want := map[string]int{}
		for _, r := range recs {
			want[r]++
		}
		var prev string
		n := 0
		for {
			rec, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if n > 0 && rec < prev {
				t.Fatalf("output out of order: %q after %q", rec, prev)
			}
			prev = rec
			want[rec]--
			n++
		}
		if n != len(recs) {
			t.Fatalf("merged %d records, put in %d", n, len(recs))
		}
		for r, c := range want {
			if c != 0 {
				t.Fatalf("record %q multiset count off by %d", r, c)
			}
		}
	})
}
