package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// RunEnv is the operational envelope shared by every detection run of
// an experiment: the context governing cancellation and the resource
// Limits. The zero value is context.Background with no limits — the
// paper's unbounded behavior — so existing callers need no changes.
//
// Experiments sweep many configurations over generated corpora, so a
// single run's interruption aborts the whole experiment: partial
// tables would silently skew the reproduced figures. The typed cause
// (core.ErrCanceled, core.ErrDeadlineExceeded, core.ErrLimitExceeded)
// propagates out for the caller to report.
// An Observer, when set, traces and counts every detection run of the
// sweep through one shared metric set — useful to watch a paper-scale
// experiment progress and to profile where its time goes.
// PairWorkers, Shards, and SimCache speed up the window sweeps; all
// are answer-preserving (identical clusters and counters), so
// reproduced accuracy figures are unaffected — only the timing columns
// of the scalability experiments change meaning (wall clock vs.
// single-core). SpillThresholdRows and SpillDir bound detection memory
// by external-sorting oversized candidates to disk; the spill path is
// answer-preserving too.
type RunEnv struct {
	Ctx                context.Context
	Limits             core.Limits
	Observer           *obs.Observer
	PairWorkers        int
	Shards             int
	SimCache           bool
	SpillThresholdRows int
	SpillDir           string
}

func (e RunEnv) context() context.Context {
	if e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

// Run executes one detection run under the environment, applying its
// Limits on top of the run options.
func (e RunEnv) Run(doc *xmltree.Document, cfg *config.Config, opts core.Options) (*core.Result, error) {
	opts.Limits = e.Limits
	opts.Observer = e.Observer
	opts.PairWorkers = e.PairWorkers
	opts.Shards = e.Shards
	opts.SimCache = e.SimCache
	opts.SpillThresholdRows = e.SpillThresholdRows
	opts.SpillDir = e.SpillDir
	return core.RunContext(e.context(), doc, cfg, opts)
}
