package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// Set3Options configure the threshold-impact experiment (Fig. 6).
type Set3Options struct {
	Discs int // clean discs of Data set 2 (default 500)
	Seed  int64
	// Window for all runs (default 4, which Fig. 4(c) found sufficient).
	Window int
	// ODThresholds sweeps Fig. 6(a) (default 0.50..1.00 step 0.05).
	ODThresholds []float64
	// FixedOD is the OD threshold used while sweeping descendant
	// thresholds. Zero selects the best threshold measured in the
	// Fig. 6(a) sweep — the paper's methodology ("we use the OD
	// threshold of 0.65 determined as optimal from the last
	// experiment").
	FixedOD float64
	// DescThresholds sweeps Fig. 6(b) (default 0.1..0.9 step 0.1).
	DescThresholds []float64
	Env            RunEnv
}

func (o *Set3Options) defaults() {
	if o.Discs == 0 {
		o.Discs = 500
	}
	if o.Window == 0 {
		o.Window = 4
	}
	if len(o.ODThresholds) == 0 {
		for th := 0.50; th <= 1.001; th += 0.05 {
			o.ODThresholds = append(o.ODThresholds, round2(th))
		}
	}
	if len(o.DescThresholds) == 0 {
		for th := 0.1; th <= 0.901; th += 0.1 {
			o.DescThresholds = append(o.DescThresholds, round2(th))
		}
	}
}

func round2(f float64) float64 {
	return float64(int(f*100+0.5)) / 100
}

// ThresholdPoint is one measurement of a threshold sweep.
type ThresholdPoint struct {
	Threshold float64
	Metrics   eval.Metrics
}

// Set3Result holds both sweeps of Fig. 6.
type Set3Result struct {
	// ODOnly is Fig. 6(a): OD threshold sweep without descendants.
	ODOnly []ThresholdPoint
	// WithDescendants is Fig. 6(b): descendants threshold sweep at the
	// fixed OD threshold.
	WithDescendants []ThresholdPoint
	FixedOD         float64
	// BestODOnlyF and BestDescF summarize the paper's headline: the
	// best f-measure with descendants exceeds the best without.
	BestODOnlyF float64
	BestDescF   float64
}

// ExpSet3Thresholds reproduces Experiment set 3 on Data set 2: first
// duplicate detection using only the disc object descriptions under a
// varying OD threshold, then with <tracks>/<title> descendants under a
// varying descendants threshold and the fixed optimal OD threshold.
func ExpSet3Thresholds(opts Set3Options) (*Set3Result, error) {
	opts.defaults()
	doc, err := dataset.DataSet2(dataset.CDs2Options{Discs: opts.Discs, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		return nil, err
	}
	res := &Set3Result{}

	for _, th := range opts.ODThresholds {
		cfg := set3Config(opts.Window, th, 0)
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		run, err := opts.Env.Run(doc, cfg, core.Options{DisableDescendants: true})
		if err != nil {
			return nil, err
		}
		m := eval.PairwiseMetrics(gold, run.Clusters["disc"])
		res.ODOnly = append(res.ODOnly, ThresholdPoint{Threshold: th, Metrics: m})
		if m.F1 > res.BestODOnlyF {
			res.BestODOnlyF = m.F1
		}
	}

	res.FixedOD = opts.FixedOD
	if res.FixedOD == 0 {
		res.FixedOD = r0BestThreshold(res.ODOnly)
	}
	for _, th := range opts.DescThresholds {
		cfg := set3Config(opts.Window, res.FixedOD, th)
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		run, err := opts.Env.Run(doc, cfg, core.Options{})
		if err != nil {
			return nil, err
		}
		m := eval.PairwiseMetrics(gold, run.Clusters["disc"])
		res.WithDescendants = append(res.WithDescendants, ThresholdPoint{Threshold: th, Metrics: m})
		if m.F1 > res.BestDescF {
			res.BestDescF = m.F1
		}
	}
	return res, nil
}

// set3Config builds the Data set 2 configuration with the two-threshold
// rule at the given OD and descendants thresholds.
func set3Config(window int, odTh, descTh float64) *config.Config {
	cfg := config.DataSet2(window)
	disc := cfg.Candidate("disc")
	disc.Rule = config.RuleEither
	disc.ODThreshold = odTh
	disc.DescThreshold = descTh
	return cfg
}

// ODTable renders Fig. 6(a) as text.
func (r *Set3Result) ODTable() Table {
	t := Table{
		Title:  "Fig. 6(a) Data set 2: OD threshold sweep (no descendants)",
		Header: []string{"odThreshold", "precision", "recall", "f-measure"},
	}
	for _, p := range r.ODOnly {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", p.Threshold),
			fmt.Sprintf("%.3f", p.Metrics.Precision),
			fmt.Sprintf("%.3f", p.Metrics.Recall),
			fmt.Sprintf("%.3f", p.Metrics.F1),
		})
	}
	return t
}

// DescTable renders Fig. 6(b) as text.
func (r *Set3Result) DescTable() Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 6(b) Data set 2: descendants threshold sweep (OD=%.2f)", r.FixedOD),
		Header: []string{"descThreshold", "precision", "recall", "f-measure"},
	}
	for _, p := range r.WithDescendants {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", p.Threshold),
			fmt.Sprintf("%.3f", p.Metrics.Precision),
			fmt.Sprintf("%.3f", p.Metrics.Recall),
			fmt.Sprintf("%.3f", p.Metrics.F1),
		})
	}
	return t
}

// BestODOnlyThreshold returns the OD threshold with the highest
// f-measure in the Fig. 6(a) sweep.
func (r *Set3Result) BestODOnlyThreshold() float64 {
	return r0BestThreshold(r.ODOnly)
}

func r0BestThreshold(points []ThresholdPoint) float64 {
	best, bestF := 0.0, -1.0
	for _, p := range points {
		if p.Metrics.F1 > bestF {
			best, bestF = p.Threshold, p.Metrics.F1
		}
	}
	return best
}

// BestDescThreshold returns the descendants threshold with the highest
// f-measure in the Fig. 6(b) sweep.
func (r *Set3Result) BestDescThreshold() float64 {
	best, bestF := 0.0, -1.0
	for _, p := range r.WithDescendants {
		if p.Metrics.F1 > bestF {
			best, bestF = p.Threshold, p.Metrics.F1
		}
	}
	return best
}
