package experiments

import (
	"strings"
	"testing"
)

func TestExpAblationsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := ExpAblations(AblationOptions{Movies: 300, Seed: 5, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	base := r.Row("sxnm")
	filt := r.Row("sxnm+filter")
	adapt := r.Row("sxnm+adaptive")
	desnm := r.Row("de-snm")
	all := r.Row("all-pairs")
	if base == nil || filt == nil || adapt == nil || desnm == nil || all == nil {
		t.Fatal("missing variants")
	}
	// Filter: identical quality, strictly fewer full comparisons.
	if filt.F1 != base.F1 || filt.Precision != base.Precision || filt.Recall != base.Recall {
		t.Errorf("filter changed quality: %+v vs %+v", filt, base)
	}
	if filt.FilteredOut == 0 {
		t.Error("filter skipped nothing")
	}
	if filt.Comparisons+filt.FilteredOut != base.Comparisons {
		t.Errorf("filter accounting broken: %d+%d != %d",
			filt.Comparisons, filt.FilteredOut, base.Comparisons)
	}
	// Adaptive window: at least as many comparisons, recall not worse.
	if adapt.Comparisons < base.Comparisons {
		t.Errorf("adaptive made fewer comparisons: %d < %d", adapt.Comparisons, base.Comparisons)
	}
	if adapt.Recall < base.Recall-1e-9 {
		t.Errorf("adaptive recall %v below base %v", adapt.Recall, base.Recall)
	}
	// All-pairs: comparison count dominates everything and recall is
	// the ceiling.
	if all.Comparisons <= base.Comparisons {
		t.Error("all-pairs should compare far more")
	}
	if all.Recall < adapt.Recall-1e-9 {
		t.Errorf("all-pairs recall %v below adaptive %v", all.Recall, adapt.Recall)
	}
	// Table renders all variants.
	out := r.Table().String()
	for _, v := range []string{"sxnm", "sxnm+filter", "sxnm+adaptive", "de-snm", "all-pairs"} {
		if !strings.Contains(out, v) {
			t.Errorf("table missing %q:\n%s", v, out)
		}
	}
	if r.Row("nosuch") != nil {
		t.Error("unknown variant should be nil")
	}
}
