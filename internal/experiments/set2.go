package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Set2Options configure the scalability experiment (Fig. 5).
type Set2Options struct {
	// Sizes are the clean movie counts to sweep (default 1k..10k).
	Sizes []int
	Seed  int64
	// Window is the sliding window size (the paper uses 3).
	Window int
	// Repeats re-runs each measurement and keeps the fastest (default
	// 3), damping scheduler noise in the phase timings.
	Repeats int
	Env     RunEnv
}

func (o *Set2Options) defaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1000, 2000, 5000, 10000}
	}
	if o.Window == 0 {
		o.Window = 3
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
}

// ScalabilityPoint holds the per-phase timings at one data size: key
// generation (KG), sliding window (SW), transitive closure (TC), and
// duplicate detection (DD = SW + TC), plus the dirty element count.
type ScalabilityPoint struct {
	CleanMovies int
	Elements    int // total candidate instances processed
	KG          time.Duration
	SW          time.Duration
	TC          time.Duration
	DD          time.Duration
}

// Set2Result holds one timing series per variant of Fig. 5(a)–(c) and
// the derived overhead of Fig. 5(d).
type Set2Result struct {
	Window int
	Series map[string][]ScalabilityPoint // keyed by variant name
}

// ExpSet2Scalability measures the phases of SXNM over growing data
// sizes for the clean, few-duplicates, and many-duplicates variants,
// reproducing Fig. 5.
func ExpSet2Scalability(opts Set2Options) (*Set2Result, error) {
	opts.defaults()
	res := &Set2Result{Window: opts.Window, Series: map[string][]ScalabilityPoint{}}
	for _, variant := range []dataset.ScaleVariant{dataset.Clean, dataset.FewDuplicates, dataset.ManyDuplicates} {
		for _, n := range opts.Sizes {
			doc, err := dataset.ScalabilityData(n, variant, opts.Seed)
			if err != nil {
				return nil, err
			}
			var best ScalabilityPoint
			for rep := 0; rep < opts.Repeats; rep++ {
				cfg := dataset.ScalabilityConfig(opts.Window)
				if err := cfg.Validate(); err != nil {
					return nil, err
				}
				run, err := opts.Env.Run(doc, cfg, core.Options{})
				if err != nil {
					return nil, err
				}
				p := ScalabilityPoint{
					CleanMovies: n,
					KG:          run.Stats.KeyGen,
					SW:          run.Stats.SlidingWindow,
					TC:          run.Stats.TransitiveClosure,
					DD:          run.Stats.DuplicateDetection(),
				}
				for _, cs := range run.Stats.Candidates {
					p.Elements += cs.Rows
				}
				if rep == 0 || p.KG+p.SW < best.KG+best.SW {
					best = p
				}
			}
			res.Series[variant.String()] = append(res.Series[variant.String()], best)
		}
	}
	return res, nil
}

// VariantTable renders the Fig. 5(a)/(b)/(c) phase timings for one
// variant ("clean", "few duplicates", "many duplicates").
func (r *Set2Result) VariantTable(variant string) Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 5 scalability (%s, window=%d)", variant, r.Window),
		Header: []string{"cleanMovies", "elements", "KG", "SW", "TC", "DD"},
	}
	for _, p := range r.Series[variant] {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.CleanMovies),
			fmt.Sprint(p.Elements),
			formatDur(p.KG), formatDur(p.SW), formatDur(p.TC), formatDur(p.DD),
		})
	}
	return t
}

// OverheadTable renders Fig. 5(d): the KG+SW time overhead of the
// dirty variants relative to clean data of the same base size.
func (r *Set2Result) OverheadTable() Table {
	t := Table{
		Title:  "Fig. 5(d) KG+SW overhead vs clean data",
		Header: []string{"cleanMovies", "few dup overhead %", "many dup overhead %"},
	}
	clean := r.Series[dataset.Clean.String()]
	few := r.Series[dataset.FewDuplicates.String()]
	many := r.Series[dataset.ManyDuplicates.String()]
	for i := range clean {
		base := clean[i].KG + clean[i].SW
		row := []string{fmt.Sprint(clean[i].CleanMovies)}
		for _, series := range [][]ScalabilityPoint{few, many} {
			if i >= len(series) || base <= 0 {
				row = append(row, "n/a")
				continue
			}
			over := float64(series[i].KG+series[i].SW)/float64(base) - 1
			row = append(row, fmt.Sprintf("%.0f", over*100))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Overheads returns the Fig. 5(d) overhead fractions per dirty variant
// aligned with the clean series (e.g. 0.18 = 18% slower than clean).
func (r *Set2Result) Overheads(variant string) []float64 {
	clean := r.Series[dataset.Clean.String()]
	series := r.Series[variant]
	out := make([]float64, 0, len(series))
	for i := range series {
		if i >= len(clean) {
			break
		}
		base := clean[i].KG + clean[i].SW
		if base <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(series[i].KG+series[i].SW)/float64(base)-1)
	}
	return out
}

func formatDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
