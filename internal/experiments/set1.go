package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// KeyLabels used in the Fig. 4 series, mirroring the paper's legends.
func keyLabel(i int) string { return fmt.Sprintf("SP key%d", i+1) }

const multiPassLabel = "MP"

// Set1MoviesOptions configure the Fig. 4(a)/(b) experiment.
type Set1MoviesOptions struct {
	Movies  int   // clean movies (default 2000)
	Seed    int64 // generation seed
	Windows []int // window sizes to sweep (default 2..20 step 2)
	Env     RunEnv
}

func (o *Set1MoviesOptions) defaults() {
	if o.Movies == 0 {
		o.Movies = 2000
	}
	if len(o.Windows) == 0 {
		o.Windows = []int{2, 4, 6, 8, 10, 12, 14, 16, 20}
	}
}

// Set1MoviesResult holds the recall and precision series of
// Figs. 4(a) and 4(b): one series per single-pass key plus the
// multi-pass combination, and the all-pairs precision the windowed
// precision converges to.
type Set1MoviesResult struct {
	Windows           []int
	Recall            map[string][]float64
	Precision         map[string][]float64
	FMeasure          map[string][]float64
	Comparisons       map[string][]int
	AllPairsPrecision float64
	AllPairsRecall    float64
	AllPairsCost      int
	PlantedDuplicates int
}

// ExpSet1Movies runs Experiment set 1 on Data set 1 (artificial
// movies): recall and precision for each key alone (single-pass) and
// for the multi-pass method, over a window-size sweep.
func ExpSet1Movies(opts Set1MoviesOptions) (*Set1MoviesResult, error) {
	opts.defaults()
	doc, planted, err := dataset.DataSet1(dataset.Movies1Options{
		Movies: opts.Movies,
		Seed:   opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	gold, err := eval.BuildGold(doc, dataset.MoviePath)
	if err != nil {
		return nil, err
	}
	res := &Set1MoviesResult{
		Windows:           opts.Windows,
		Recall:            map[string][]float64{},
		Precision:         map[string][]float64{},
		FMeasure:          map[string][]float64{},
		Comparisons:       map[string][]int{},
		PlantedDuplicates: planted,
	}

	nKeys := len(config.DataSet1(0).Candidates[0].Keys)
	variants := make([]string, 0, nKeys+1)
	for i := 0; i < nKeys; i++ {
		variants = append(variants, keyLabel(i))
	}
	variants = append(variants, multiPassLabel)

	for _, w := range opts.Windows {
		for vi, label := range variants {
			cfg := config.DataSet1(w)
			if vi < nKeys {
				cfg.KeepKeys("movie", vi)
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			run, err := opts.Env.Run(doc, cfg, core.Options{})
			if err != nil {
				return nil, err
			}
			m := eval.PairwiseMetrics(gold, run.Clusters["movie"])
			res.Recall[label] = append(res.Recall[label], m.Recall)
			res.Precision[label] = append(res.Precision[label], m.Precision)
			res.FMeasure[label] = append(res.FMeasure[label], m.F1)
			res.Comparisons[label] = append(res.Comparisons[label], run.Stats.Candidates["movie"].Comparisons)
		}
	}

	// All-pairs reference: the quality of the similarity measure when
	// every pair is compared (Fig. 4(b)'s convergence target).
	apCfg := config.DataSet1(2)
	if err := apCfg.Validate(); err != nil {
		return nil, err
	}
	ap, err := baseline.AllPairs(doc, apCfg, core.Options{})
	if err != nil {
		return nil, err
	}
	apm := eval.PairwiseMetrics(gold, ap.Clusters["movie"])
	res.AllPairsPrecision = apm.Precision
	res.AllPairsRecall = apm.Recall
	res.AllPairsCost = ap.Comparisons
	return res, nil
}

// RecallTable renders Fig. 4(a) as text.
func (r *Set1MoviesResult) RecallTable() Table {
	return seriesTable("Fig. 4(a) Data set 1: recall vs window size", "recall", r.Windows, r.Recall)
}

// PrecisionTable renders Fig. 4(b) as text.
func (r *Set1MoviesResult) PrecisionTable() Table {
	t := seriesTable("Fig. 4(b) Data set 1: precision vs window size", "precision", r.Windows, r.Precision)
	t.Rows = append(t.Rows, []string{"all-pairs", fmt.Sprintf("%.3f", r.AllPairsPrecision)})
	return t
}

// CostTable renders the comparison counts behind the Sec. 2.2
// trade-off discussion: larger windows buy recall with quadratic-ish
// comparison growth, bounded above by the all-pairs count.
func (r *Set1MoviesResult) CostTable() Table {
	t := Table{
		Title:  "Data set 1: similarity comparisons vs window size",
		Header: append([]string{"series"}, windowHeader(r.Windows)...),
	}
	for _, label := range sortedKeys(r.Comparisons) {
		row := []string{label}
		for _, v := range r.Comparisons[label] {
			row = append(row, fmt.Sprint(v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"all-pairs", fmt.Sprint(r.AllPairsCost)})
	return t
}

// Set1CDsOptions configure the Fig. 4(c) experiment.
type Set1CDsOptions struct {
	Discs   int // clean discs (default 500, as in the paper)
	Seed    int64
	Windows []int // default 2..12
	Env     RunEnv
}

func (o *Set1CDsOptions) defaults() {
	if o.Discs == 0 {
		o.Discs = 500
	}
	if len(o.Windows) == 0 {
		o.Windows = []int{2, 4, 6, 8, 10, 12}
	}
}

// Set1CDsResult holds the f-measure series of Fig. 4(c).
type Set1CDsResult struct {
	Windows  []int
	FMeasure map[string][]float64
}

// ExpSet1CDs runs Experiment set 1 on Data set 2 (real-world-like CDs
// with one generated duplicate per disc): f-measure for each disc key
// and the multi-pass method.
func ExpSet1CDs(opts Set1CDsOptions) (*Set1CDsResult, error) {
	opts.defaults()
	doc, err := dataset.DataSet2(dataset.CDs2Options{Discs: opts.Discs, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		return nil, err
	}
	res := &Set1CDsResult{Windows: opts.Windows, FMeasure: map[string][]float64{}}
	nKeys := len(config.DataSet2(0).Candidates[0].Keys)
	for _, w := range opts.Windows {
		for vi := 0; vi <= nKeys; vi++ {
			label := multiPassLabel
			cfg := config.DataSet2(w)
			if vi < nKeys {
				label = keyLabel(vi)
				cfg.KeepKeys("disc", vi)
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			run, err := opts.Env.Run(doc, cfg, core.Options{})
			if err != nil {
				return nil, err
			}
			m := eval.PairwiseMetrics(gold, run.Clusters["disc"])
			res.FMeasure[label] = append(res.FMeasure[label], m.F1)
		}
	}
	return res, nil
}

// FMeasureTable renders Fig. 4(c) as text.
func (r *Set1CDsResult) FMeasureTable() Table {
	return seriesTable("Fig. 4(c) Data set 2: f-measure vs window size", "f-measure", r.Windows, r.FMeasure)
}

// Set1LargeOptions configure the Fig. 4(d) experiment.
type Set1LargeOptions struct {
	Discs   int // corpus size (default 10000, as in the paper)
	Seed    int64
	Windows []int // default 2..10
	Env     RunEnv
}

func (o *Set1LargeOptions) defaults() {
	if o.Discs == 0 {
		o.Discs = 10000
	}
	if len(o.Windows) == 0 {
		o.Windows = []int{2, 3, 4, 5, 6, 8, 10}
	}
}

// Set1LargeResult holds the precision series, detected duplicate
// counts, and false-positive taxonomy of Fig. 4(d) and its discussion.
type Set1LargeResult struct {
	Windows    []int
	Precision  map[string][]float64
	Duplicates map[string][]int // detected duplicate pairs
	// Breakdown classifies the false positives per variant and window.
	Breakdown map[string][]eval.FPBreakdown
}

// ExpSet1Large runs Experiment set 1 on Data set 3: the large CD
// corpus with natural duplicates. Recall cannot be measured in the
// paper; here the planted gold layer yields precision directly, and
// the false positives are classified into the paper's taxonomy
// (series/various discs, unreadable discs, other).
func ExpSet1Large(opts Set1LargeOptions) (*Set1LargeResult, error) {
	opts.defaults()
	doc := dataset.DataSet3(opts.Discs, opts.Seed)
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		return nil, err
	}
	res := &Set1LargeResult{
		Windows:    opts.Windows,
		Precision:  map[string][]float64{},
		Duplicates: map[string][]int{},
		Breakdown:  map[string][]eval.FPBreakdown{},
	}
	nKeys := len(config.DataSet3(0).Candidates[0].Keys)
	for _, w := range opts.Windows {
		for vi := 0; vi <= nKeys; vi++ {
			label := multiPassLabel
			cfg := config.DataSet3(w)
			if vi < nKeys {
				label = keyLabel(vi)
				cfg.KeepKeys("disc", vi)
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			run, err := opts.Env.Run(doc, cfg, core.Options{})
			if err != nil {
				return nil, err
			}
			cs := run.Clusters["disc"]
			m := eval.PairwiseMetrics(gold, cs)
			res.Precision[label] = append(res.Precision[label], m.Precision)
			res.Duplicates[label] = append(res.Duplicates[label], m.TP+m.FP)
			res.Breakdown[label] = append(res.Breakdown[label], eval.ClassifyFalsePositives(doc, gold, cs))
		}
	}
	return res, nil
}

// PrecisionTable renders Fig. 4(d) as text.
func (r *Set1LargeResult) PrecisionTable() Table {
	return seriesTable("Fig. 4(d) Data set 3: precision vs window size", "precision", r.Windows, r.Precision)
}

// DuplicatesTable renders the detected-duplicate counts quoted in the
// Fig. 4(d) discussion.
func (r *Set1LargeResult) DuplicatesTable() Table {
	t := Table{
		Title:  "Fig. 4(d) Data set 3: detected duplicate pairs",
		Header: append([]string{"series"}, windowHeader(r.Windows)...),
	}
	for _, label := range sortedKeys(r.Duplicates) {
		row := []string{label}
		for _, v := range r.Duplicates[label] {
			row = append(row, fmt.Sprint(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// BreakdownTable renders the FP taxonomy for one series label.
func (r *Set1LargeResult) BreakdownTable(label string) Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 4(d) discussion: false-positive taxonomy (%s)", label),
		Header: []string{"window", "series%", "unreadable%", "other%", "totalFP"},
	}
	for i, w := range r.Windows {
		b := r.Breakdown[label][i]
		s, u, o := b.Fractions()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w),
			fmt.Sprintf("%.0f", s*100),
			fmt.Sprintf("%.0f", u*100),
			fmt.Sprintf("%.0f", o*100),
			fmt.Sprint(b.Total),
		})
	}
	return t
}

// seriesTable builds a table with one row per series and one column
// per window size.
func seriesTable(title, _ string, windows []int, series map[string][]float64) Table {
	t := Table{Title: title, Header: append([]string{"series"}, windowHeader(windows)...)}
	for _, label := range sortedKeys(series) {
		row := []string{label}
		for _, v := range series[label] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func windowHeader(windows []int) []string {
	out := make([]string, len(windows))
	for i, w := range windows {
		out[i] = fmt.Sprintf("w=%d", w)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Simple insertion sort keeps the package dependency-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
