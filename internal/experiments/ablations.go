package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// AblationOptions configure the design-choice ablations of DESIGN.md:
// the Sec. 5 comparison filter, the adaptive window, DE-SNM, and the
// all-pairs ceiling, all on Data set 1.
type AblationOptions struct {
	Movies int // clean movies (default 1000)
	Seed   int64
	Window int // base window (default 5)
	Env    RunEnv
}

func (o *AblationOptions) defaults() {
	if o.Movies == 0 {
		o.Movies = 1000
	}
	if o.Window == 0 {
		o.Window = 5
	}
}

// AblationRow is one variant's measurements.
type AblationRow struct {
	Variant     string
	Comparisons int
	FilteredOut int
	Precision   float64
	Recall      float64
	F1          float64
	Duration    time.Duration
}

// AblationResult holds all variant rows.
type AblationResult struct {
	Rows []AblationRow
}

// ExpAblations measures SXNM variants against each other on one dirty
// movie data set:
//
//	sxnm            the plain engine (multi-pass, fixed window)
//	sxnm+filter     with the Sec. 5 upper-bound comparison filter
//	sxnm+adaptive   with key-distance window extension
//	de-snm          with exact-duplicate elimination before windowing
//	all-pairs       the exhaustive quality ceiling
func ExpAblations(opts AblationOptions) (*AblationResult, error) {
	opts.defaults()
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: opts.Movies, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	gold, err := eval.BuildGold(doc, dataset.MoviePath)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}

	addCore := func(variant string, mutate func(*config.Config), o core.Options) error {
		cfg := config.DataSet1(opts.Window)
		if mutate != nil {
			mutate(cfg)
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		start := time.Now()
		run, err := opts.Env.Run(doc, cfg, o)
		if err != nil {
			return err
		}
		m := eval.PairwiseMetrics(gold, run.Clusters["movie"])
		res.Rows = append(res.Rows, AblationRow{
			Variant:     variant,
			Comparisons: run.Stats.Comparisons,
			FilteredOut: run.Stats.FilteredOut,
			Precision:   m.Precision,
			Recall:      m.Recall,
			F1:          m.F1,
			Duration:    time.Since(start),
		})
		return nil
	}

	if err := addCore("sxnm", nil, core.Options{}); err != nil {
		return nil, err
	}
	if err := addCore("sxnm+filter", nil, core.Options{UseFilter: true}); err != nil {
		return nil, err
	}
	if err := addCore("sxnm+adaptive", func(cfg *config.Config) {
		m := cfg.Candidate("movie")
		m.AdaptiveKeySim = 0.8
		m.AdaptiveMaxWindow = 3 * opts.Window
	}, core.Options{}); err != nil {
		return nil, err
	}

	// DE-SNM.
	{
		cfg := config.DataSet1(opts.Window)
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		start := time.Now()
		de, err := baseline.DESNM(doc, cfg, core.Options{})
		if err != nil {
			return nil, err
		}
		m := eval.PairwiseMetrics(gold, de.Clusters["movie"])
		res.Rows = append(res.Rows, AblationRow{
			Variant:     "de-snm",
			Comparisons: de.Comparisons,
			Precision:   m.Precision,
			Recall:      m.Recall,
			F1:          m.F1,
			Duration:    time.Since(start),
		})
	}

	// All-pairs ceiling.
	{
		cfg := config.DataSet1(opts.Window)
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		start := time.Now()
		ap, err := baseline.AllPairs(doc, cfg, core.Options{})
		if err != nil {
			return nil, err
		}
		m := eval.PairwiseMetrics(gold, ap.Clusters["movie"])
		res.Rows = append(res.Rows, AblationRow{
			Variant:     "all-pairs",
			Comparisons: ap.Comparisons,
			Precision:   m.Precision,
			Recall:      m.Recall,
			F1:          m.F1,
			Duration:    time.Since(start),
		})
	}
	return res, nil
}

// Table renders the ablation rows.
func (r *AblationResult) Table() Table {
	t := Table{
		Title:  "Ablations (Data set 1)",
		Header: []string{"variant", "comparisons", "filtered", "precision", "recall", "f-measure", "time"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Variant,
			fmt.Sprint(row.Comparisons),
			fmt.Sprint(row.FilteredOut),
			fmt.Sprintf("%.3f", row.Precision),
			fmt.Sprintf("%.3f", row.Recall),
			fmt.Sprintf("%.3f", row.F1),
			formatDur(row.Duration),
		})
	}
	return t
}

// Row returns the named variant's row, or nil.
func (r *AblationResult) Row(variant string) *AblationRow {
	for i := range r.Rows {
		if r.Rows[i].Variant == variant {
			return &r.Rows[i]
		}
	}
	return nil
}
