package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run reduced-size versions of each figure and
// assert the qualitative shapes the paper reports, not absolute
// numbers.

func TestTable1(t *testing.T) {
	tables := Table1()
	if len(tables) != 4 { // PATH, OD, KEY1, KEY2
		t.Fatalf("Table1 returned %d tables", len(tables))
	}
	out := ""
	for _, tb := range tables {
		out += tb.String()
	}
	for _, want := range []string{"title/text()", "@ID", "@year", "K1,K2", "D3,D4", "D1", "C1,C2", "0.8", "0.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2PaperKeys(t *testing.T) {
	tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"MT99", "5MA", "Matrix", "1999"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	tables := Table3()
	if len(tables) != 3 {
		t.Fatalf("Table3 returned %d tables", len(tables))
	}
	out := tables[0].String() + tables[1].String() + tables[2].String()
	for _, want := range []string{"K1-K5", "did/text()", "dtitle[1]/text()", "C1-C6", "artist[1]/text()"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestTableString(t *testing.T) {
	tb := Table{Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	out := tb.String()
	if !strings.Contains(out, "t\n") || !strings.Contains(out, "a ") {
		t.Errorf("table render:\n%s", out)
	}
}

func fig4aOpts() Set1MoviesOptions {
	return Set1MoviesOptions{Movies: 500, Seed: 42, Windows: []int{2, 4, 8, 16}}
}

func TestExpSet1MoviesShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := ExpSet1Movies(fig4aOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.PlantedDuplicates == 0 {
		t.Fatal("no planted duplicates")
	}
	last := len(r.Windows) - 1

	// Shape: recall grows with window size for every series.
	for label, series := range r.Recall {
		if series[last] < series[0]-0.02 {
			t.Errorf("%s: recall did not grow: %v", label, series)
		}
	}
	// Shape: MP recall >= every single-pass recall at each window
	// (multi-pass pairs are a superset).
	for i := range r.Windows {
		mp := r.Recall["MP"][i]
		for _, label := range []string{"SP key1", "SP key2", "SP key3"} {
			if mp < r.Recall[label][i]-1e-9 {
				t.Errorf("window %d: MP recall %.3f < %s %.3f", r.Windows[i], mp, label, r.Recall[label][i])
			}
		}
	}
	// Shape: key1 (title consonants) beats key2 (year-led) on recall at
	// the largest window.
	if r.Recall["SP key1"][last] <= r.Recall["SP key2"][last] {
		t.Errorf("key1 recall %.3f should beat key2 %.3f",
			r.Recall["SP key1"][last], r.Recall["SP key2"][last])
	}
	// Shape: precision stays high and converges toward the all-pairs
	// precision.
	if r.AllPairsPrecision < 0.7 {
		t.Errorf("all-pairs precision = %.3f, too low for shape checks", r.AllPairsPrecision)
	}
	diff := r.Precision["SP key1"][last] - r.AllPairsPrecision
	if diff < -0.15 || diff > 0.15 {
		t.Errorf("key1 precision %.3f far from all-pairs %.3f",
			r.Precision["SP key1"][last], r.AllPairsPrecision)
	}
	// Tables render.
	if out := r.RecallTable().String(); !strings.Contains(out, "SP key1") {
		t.Error("recall table missing series")
	}
	if out := r.PrecisionTable().String(); !strings.Contains(out, "all-pairs") {
		t.Error("precision table missing all-pairs row")
	}
}

func TestExpSet1CDsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := ExpSet1CDs(Set1CDsOptions{Discs: 200, Seed: 7, Windows: []int{2, 4, 8, 12}})
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Windows) - 1
	// Shape: f-measure increases with window size for MP.
	if r.FMeasure["MP"][last] < r.FMeasure["MP"][0]-0.02 {
		t.Errorf("MP f-measure did not grow: %v", r.FMeasure["MP"])
	}
	// Shape: multi-pass at the smallest window beats every single key
	// at the largest tested window (the paper's headline for 4(c)).
	mpSmall := r.FMeasure["MP"][0]
	for _, label := range []string{"SP key1", "SP key2", "SP key3"} {
		if mpSmall < r.FMeasure[label][last]-0.05 {
			t.Errorf("MP@w=2 (%.3f) should rival %s@w=12 (%.3f)",
				mpSmall, label, r.FMeasure[label][last])
		}
	}
	// Shape: key3 (genre+year led) is the weakest key.
	if r.FMeasure["SP key3"][last] > r.FMeasure["SP key2"][last] {
		t.Errorf("key3 (%.3f) should not beat key2 (%.3f)",
			r.FMeasure["SP key3"][last], r.FMeasure["SP key2"][last])
	}
	if out := r.FMeasureTable().String(); !strings.Contains(out, "MP") {
		t.Error("f-measure table missing MP")
	}
}

func TestExpSet1LargeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := ExpSet1Large(Set1LargeOptions{Discs: 2000, Seed: 11, Windows: []int{2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Shape: the did-prefix key (key2) is the most precise; the
	// title/artist key (key1) detects more duplicates at lower
	// precision; multi-pass accumulates both keys' false positives.
	for i := range r.Windows {
		if r.Precision["SP key2"][i] < r.Precision["SP key1"][i]-0.02 {
			t.Errorf("window %d: key2 precision %.3f below key1 %.3f",
				r.Windows[i], r.Precision["SP key2"][i], r.Precision["SP key1"][i])
		}
		if r.Duplicates["SP key1"][i] <= r.Duplicates["SP key2"][i] {
			t.Errorf("window %d: key1 should find more duplicates (%d vs %d)",
				r.Windows[i], r.Duplicates["SP key1"][i], r.Duplicates["SP key2"][i])
		}
		if r.Precision["MP"][i] > r.Precision["SP key2"][i]+1e-9 {
			t.Errorf("window %d: MP precision %.3f should not beat key2 %.3f",
				r.Windows[i], r.Precision["MP"][i], r.Precision["SP key2"][i])
		}
	}
	// Shape: series + unreadable dominate the key1 false positives.
	lastIdx := len(r.Windows) - 1
	b := r.Breakdown["SP key1"][lastIdx]
	if b.Total > 0 {
		s, u, _ := b.Fractions()
		if s+u < 0.5 {
			t.Errorf("pathologies should dominate FPs: series=%.2f unreadable=%.2f (total %d)", s, u, b.Total)
		}
	}
	if out := r.PrecisionTable().String(); !strings.Contains(out, "SP key1") {
		t.Error("precision table broken")
	}
	if out := r.DuplicatesTable().String(); !strings.Contains(out, "MP") {
		t.Error("duplicates table broken")
	}
	if out := r.BreakdownTable("SP key1").String(); !strings.Contains(out, "series%") {
		t.Error("breakdown table broken")
	}
}

func TestExpSet2ScalabilityShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := ExpSet2Scalability(Set2Options{Sizes: []int{200, 800}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	clean := r.Series["clean"]
	many := r.Series["many duplicates"]
	if len(clean) != 2 || len(many) != 2 {
		t.Fatalf("series lengths wrong: %d/%d", len(clean), len(many))
	}
	// Shape: more data, more elements processed.
	if clean[1].Elements <= clean[0].Elements {
		t.Error("element counts should grow with size")
	}
	// Shape: many duplicates processes more elements than clean at the
	// same base size (roughly 2-3x).
	if many[1].Elements <= clean[1].Elements {
		t.Error("many-duplicates data should be larger than clean")
	}
	// Shape: durations were measured.
	for _, p := range append(clean, many...) {
		if p.KG <= 0 || p.DD <= 0 {
			t.Errorf("phase timings missing: %+v", p)
		}
	}
	// Tables render.
	if out := r.VariantTable("clean").String(); !strings.Contains(out, "KG") {
		t.Error("variant table broken")
	}
	if out := r.OverheadTable().String(); !strings.Contains(out, "overhead") {
		t.Error("overhead table broken")
	}
	if got := r.Overheads("few duplicates"); len(got) != 2 {
		t.Errorf("overheads = %v", got)
	}
}

func TestExpSet3ThresholdShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := ExpSet3Thresholds(Set3Options{Discs: 250, Seed: 3, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Shape (6a): as the OD threshold rises, recall must not increase
	// and precision must not decrease (monotone in threshold).
	for i := 1; i < len(r.ODOnly); i++ {
		if r.ODOnly[i].Metrics.Recall > r.ODOnly[i-1].Metrics.Recall+1e-9 {
			t.Errorf("recall increased with threshold: %v -> %v",
				r.ODOnly[i-1], r.ODOnly[i])
		}
		if r.ODOnly[i].Metrics.Precision < r.ODOnly[i-1].Metrics.Precision-0.05 {
			t.Errorf("precision dropped notably with threshold: %v -> %v",
				r.ODOnly[i-1], r.ODOnly[i])
		}
	}
	// Shape (6a): the best threshold is interior (not 0.5, not 1.0).
	best := r.BestODOnlyThreshold()
	if best <= 0.5 || best >= 0.99 {
		t.Errorf("best OD threshold = %.2f, want interior peak", best)
	}
	// Shape (6b): descendants improve the best f-measure.
	if r.BestDescF < r.BestODOnlyF-1e-9 {
		t.Errorf("best with descendants %.3f below OD-only best %.3f",
			r.BestDescF, r.BestODOnlyF)
	}
	// Shape (6b): a low descendants threshold wins; very high ones
	// degrade toward (or below) the OD-only result.
	bestDesc := r.BestDescThreshold()
	if bestDesc > 0.6 {
		t.Errorf("best descendants threshold = %.2f, expected low", bestDesc)
	}
	lastF := r.WithDescendants[len(r.WithDescendants)-1].Metrics.F1
	if lastF > r.BestDescF-0.005 {
		t.Errorf("f at desc threshold 0.9 (%.3f) should be below the peak (%.3f)", lastF, r.BestDescF)
	}
	if out := r.ODTable().String(); !strings.Contains(out, "odThreshold") {
		t.Error("OD table broken")
	}
	if out := r.DescTable().String(); !strings.Contains(out, "descThreshold") {
		t.Error("desc table broken")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "b"}, Rows: [][]string{{"1", "x|y"}}}
	out := tb.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "| --- | --- |", "x\\|y"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCostTableMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := ExpSet1Movies(Set1MoviesOptions{Movies: 300, Seed: 9, Windows: []int{2, 6, 12}})
	if err != nil {
		t.Fatal(err)
	}
	// Comparisons grow with window size and never exceed all-pairs.
	for label, series := range r.Comparisons {
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Errorf("%s: comparisons dropped: %v", label, series)
			}
		}
		if series[len(series)-1] > r.AllPairsCost {
			t.Errorf("%s: windowed comparisons %d exceed all-pairs %d",
				label, series[len(series)-1], r.AllPairsCost)
		}
	}
	if out := r.CostTable().String(); !strings.Contains(out, "all-pairs") {
		t.Error("cost table missing all-pairs row")
	}
}
