// Package experiments reproduces every table and figure of the
// paper's evaluation (Sec. 4): the configuration tables (Tables 1 and
// 3), the temporary-relation worked example (Table 2), effectiveness
// sweeps over window sizes (Fig. 4), the scalability phase timings
// (Fig. 5), and the threshold studies (Fig. 6). Each runner returns a
// structured result plus a printable text table with the same rows or
// series the paper reports.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// Table is a printable experiment artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**")
		b.WriteString(t.Title)
		b.WriteString("**\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Table1 renders the paper's Table 1: the PATH, OD, and KEY relations
// configured for <movie> elements in the illustrative example.
func Table1() []Table {
	cfg := config.Table1Movie()
	c := &cfg.Candidates[0]
	path := Table{Title: "(a) PATH_movie", Header: []string{"id", "relPath"}}
	for _, p := range c.Paths {
		path.Rows = append(path.Rows, []string{fmt.Sprint(p.ID), p.RelPath})
	}
	od := Table{Title: "(b) OD_movie", Header: []string{"pid", "relevance"}}
	for _, o := range c.OD {
		od.Rows = append(od.Rows, []string{fmt.Sprint(o.PathID), fmt.Sprintf("%.1f", o.Relevance)})
	}
	out := []Table{path, od}
	for i, k := range c.Keys {
		kt := Table{
			Title:  fmt.Sprintf("(%c) KEY_movie,%d", 'c'+i, i+1),
			Header: []string{"pid", "order", "pattern"},
		}
		for _, part := range k.Parts {
			kt.Rows = append(kt.Rows, []string{
				fmt.Sprint(part.PathID), fmt.Sprint(part.Order), part.Pattern,
			})
		}
		out = append(out, kt)
	}
	return out
}

// Table2XML is the Fig. 2(a) movie used for the Table 2 worked example.
const Table2XML = `
<movie_database>
  <movies>
    <movie ID="5632" year="1999">
      <title>Matrix</title>
      <people>
        <person>Keanu Reeves</person>
        <person>Laurence Fishburne</person>
        <person>Don Davis</person>
      </people>
    </movie>
  </movies>
</movie_database>`

// Table2 reproduces the paper's Table 2(a): the GK_movie relation for
// the Fig. 2(a) movie under the Table 1 configuration, with generated
// keys MT99 and 5MA.
func Table2() (Table, error) {
	doc, err := xmltree.ParseString(Table2XML)
	if err != nil {
		return Table{}, err
	}
	cfg := config.Table1Movie()
	if err := cfg.Validate(); err != nil {
		return Table{}, err
	}
	kg, err := core.GenerateKeys(doc, cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "(a) GK_movie",
		Header: []string{"eID", "key1", "key2", "od1", "od2"},
	}
	for _, row := range kg.Tables["movie"].Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.EID),
			row.Keys[0], row.Keys[1],
			first(row.OD[0]), first(row.OD[1]),
		})
	}
	return t, nil
}

func first(vals []string) string {
	if len(vals) == 0 {
		return ""
	}
	return vals[0]
}

// Table3 renders the paper's Table 3: the key configurations of the
// three data sets.
func Table3() []Table {
	mk := func(title string, cfg *config.Config) Table {
		t := Table{Title: title, Header: []string{"candidate", "key", "relPath", "pattern"}}
		for i := range cfg.Candidates {
			c := &cfg.Candidates[i]
			relOf := func(pid int) string {
				for _, p := range c.Paths {
					if p.ID == pid {
						return p.RelPath
					}
				}
				return "?"
			}
			for _, k := range c.Keys {
				for j, part := range k.Parts {
					name, key := "", ""
					if j == 0 {
						name, key = c.Name, k.Name
					}
					t.Rows = append(t.Rows, []string{name, key, relOf(part.PathID), part.Pattern})
				}
			}
		}
		return t
	}
	return []Table{
		mk("(a) Data set 1 (art. movies)", config.DataSet1(0)),
		mk("(b) Data set 2 (CDs)", config.DataSet2(0)),
		mk("(c) Data set 3 (real-world CDs)", config.DataSet3(0)),
	}
}
