package dataset

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/eval"
)

func TestDataSet1Shapes(t *testing.T) {
	doc, dups, err := DataSet1(Movies1Options{Movies: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	movies := doc.ElementsByPath(MoviePath)
	if len(movies) != 200+dups {
		t.Errorf("movie count = %d, want %d", len(movies), 200+dups)
	}
	if dups < 30 || dups > 90 {
		t.Errorf("dups = %d, expected ~60 at 30%%", dups)
	}
}

func TestDataSet1EndToEnd(t *testing.T) {
	doc, _, err := DataSet1(Movies1Options{Movies: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.DataSet1(10)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gold, err := eval.BuildGold(doc, MoviePath)
	if err != nil {
		t.Fatal(err)
	}
	m := eval.PairwiseMetrics(gold, res.Clusters["movie"])
	if m.Recall < 0.5 {
		t.Errorf("recall = %v, want >= 0.5 on planted duplicates (%s)", m.Recall, m)
	}
	if m.Precision < 0.8 {
		t.Errorf("precision = %v, want >= 0.8 (%s)", m.Precision, m)
	}
}

func TestScalabilityVariants(t *testing.T) {
	for _, v := range []ScaleVariant{Clean, FewDuplicates, ManyDuplicates} {
		doc, err := ScalabilityData(100, v, 7)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		n := len(doc.ElementsByPath(MoviePath))
		switch v {
		case Clean:
			if n != 100 {
				t.Errorf("clean movie count = %d", n)
			}
		case FewDuplicates:
			if n <= 100 || n > 140 {
				t.Errorf("few-dups movie count = %d, want ~120", n)
			}
		case ManyDuplicates:
			if n < 200 || n > 310 {
				t.Errorf("many-dups movie count = %d, want ~250", n)
			}
		}
	}
}

func TestScalabilityVariantString(t *testing.T) {
	if Clean.String() != "clean" || FewDuplicates.String() != "few duplicates" ||
		ManyDuplicates.String() != "many duplicates" {
		t.Error("variant names wrong")
	}
	if ScaleVariant(9).String() == "" {
		t.Error("unknown variant should still render")
	}
}

func TestScalabilityUnknownVariant(t *testing.T) {
	if _, err := ScalabilityData(10, ScaleVariant(9), 1); err == nil {
		t.Error("unknown variant should fail")
	}
}

func TestScalabilityConfigRuns(t *testing.T) {
	doc, err := ScalabilityData(150, FewDuplicates, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScalabilityConfig(3)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"movie", "title", "person"} {
		if res.Clusters[name] == nil {
			t.Errorf("missing cluster set for %q", name)
		}
	}
	// Bottom-up: titles and persons processed before movies; movies
	// have descendant info available.
	if res.Stats.Candidates["movie"].Rows == 0 {
		t.Error("no movie rows")
	}
}

func TestDataSet2Shapes(t *testing.T) {
	doc, err := DataSet2(CDs2Options{Discs: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	discs := doc.ElementsByPath(DiscPath)
	if len(discs) != 200 {
		t.Errorf("disc count = %d, want 200 (100 clean + 100 dups)", len(discs))
	}
	gold, err := eval.BuildGold(doc, DiscPath)
	if err != nil {
		t.Fatal(err)
	}
	if gold.TruePairs() != 100 {
		t.Errorf("true pairs = %d, want 100", gold.TruePairs())
	}
}

func TestDataSet2EndToEnd(t *testing.T) {
	doc, err := DataSet2(CDs2Options{Discs: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.DataSet2(6)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gold, err := eval.BuildGold(doc, DiscPath)
	if err != nil {
		t.Fatal(err)
	}
	m := eval.PairwiseMetrics(gold, res.Clusters["disc"])
	if m.F1 < 0.6 {
		t.Errorf("disc f-measure = %v, want >= 0.6 (%s)", m.F1, m)
	}
}

func TestDataSet3Shapes(t *testing.T) {
	doc := DataSet3(1000, 11)
	discs := doc.ElementsByPath(DiscPath)
	if len(discs) != 1000 {
		t.Errorf("disc count = %d, want 1000", len(discs))
	}
	gold, err := eval.BuildGold(doc, DiscPath)
	if err != nil {
		t.Fatal(err)
	}
	if gold.TruePairs() == 0 {
		t.Error("data set 3 should contain genuine duplicate submissions")
	}
	if gold.TruePairs() > 100 {
		t.Errorf("true pairs = %d, expected a thin duplicate layer", gold.TruePairs())
	}
}

func TestDefaults(t *testing.T) {
	doc, _, err := DataSet1(Movies1Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(doc.ElementsByPath(MoviePath)); n < 1000 {
		t.Errorf("default movies = %d, want >= 1000", n)
	}
	if DataSet3(0, 1) == nil {
		t.Error("default data set 3 failed")
	}
}
