// Package dataset assembles the paper's three evaluation data sets
// (Sec. 4.1) from the generator substrates: clean generation
// (gen/toxgene, gen/freedb) followed by duplicate injection
// (gen/dirty), paired with the matching configuration fixtures
// (config.DataSet1/2/3).
package dataset

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/gen/dirty"
	"repro/internal/gen/freedb"
	"repro/internal/gen/toxgene"
	"repro/internal/xmltree"
)

// MoviePath is the absolute path of movie candidates in Data set 1.
const MoviePath = "movie_database/movies/movie"

// TitlePath and PersonPath address the nested objects duplicated in
// the scalability experiments.
const (
	TitlePath  = "movie_database/movies/movie/title"
	PersonPath = "movie_database/movies/movie/people/person"
)

// DiscPath is the absolute path of disc candidates in Data sets 2 and 3.
const DiscPath = "cds/disc"

// TrackTitlePath addresses the disc/tracks/title candidates.
const TrackTitlePath = "cds/disc/tracks/title"

// Movies1Options configure Data set 1 (artificial movies, dirtied).
type Movies1Options struct {
	// Movies is the clean movie count before duplication.
	Movies int
	Seed   int64
	// DupProb duplicates each movie with this probability (default 0.3).
	DupProb float64
	// SevereTitleProb is the fraction of duplicates whose title prefix
	// is scrambled so the key sorts far away — the paper's "5% of the
	// titles were polluted in such a way that their keys are sorted
	// far apart" (default 0.05).
	SevereTitleProb float64
}

func (o *Movies1Options) defaults() {
	if o.Movies == 0 {
		o.Movies = 1000
	}
	if o.DupProb == 0 {
		o.DupProb = 0.3
	}
	if o.SevereTitleProb == 0 {
		o.SevereTitleProb = 0.05
	}
}

// DataSet1 builds the dirty artificial movie data of Data set 1 and
// reports how many duplicates were planted. Use config.DataSet1 for
// the matching candidate configuration.
func DataSet1(opts Movies1Options) (*xmltree.Document, int, error) {
	opts.defaults()
	clean := toxgene.Movies(opts.Movies, opts.Seed)
	res, err := dirty.Pollute(clean, []dirty.Spec{{
		Path:    MoviePath,
		Prob:    opts.DupProb,
		MaxDups: 1,
		Errors: dirty.ErrorModel{
			MinTypos:     1,
			MaxTypos:     2,
			TypoProb:     0.6,
			WordSwapProb: 0.05,
			DropAttrProb: 0.06,
			// Titles are retyped more carefully than numeric attributes
			// (a single typo, and only for roughly half the duplicates),
			// which is what makes the title-consonant key the most
			// reliable sort key — the paper's central Fig. 4(a) finding.
			// The severe pollution share scrambles the title prefix so
			// those duplicates sort far apart (the paper's 5%).
			PerElement: map[string]dirty.ErrorModel{
				"title": {
					MinTypos:   1,
					MaxTypos:   1,
					TypoProb:   0.55,
					SevereProb: opts.SevereTitleProb,
				},
			},
		},
	}}, opts.Seed+1)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: data set 1: %w", err)
	}
	return res.Doc, res.DuplicatesByPath[MoviePath], nil
}

// ScaleVariant selects the duplication profile of the scalability
// experiments (Experiment set 2).
type ScaleVariant int

const (
	// Clean has no planted duplicates (Fig. 5(a)).
	Clean ScaleVariant = iota
	// FewDuplicates applies 20% dupProb to movies, titles, and persons,
	// one duplicate each (Fig. 5(b)).
	FewDuplicates
	// ManyDuplicates applies 100% dupProb with up to two duplicates to
	// movies and persons, and 20% with one duplicate to titles
	// (Fig. 5(c)).
	ManyDuplicates
)

// String names the variant for experiment output.
func (v ScaleVariant) String() string {
	switch v {
	case Clean:
		return "clean"
	case FewDuplicates:
		return "few duplicates"
	case ManyDuplicates:
		return "many duplicates"
	}
	return fmt.Sprintf("ScaleVariant(%d)", int(v))
}

// ScalabilityData builds the movie data for one point of Experiment
// set 2: n clean movies, dirtied per the variant.
func ScalabilityData(n int, variant ScaleVariant, seed int64) (*xmltree.Document, error) {
	clean := toxgene.Movies(n, seed)
	if variant == Clean {
		return clean, nil
	}
	errors := dirty.ErrorModel{MinTypos: 1, MaxTypos: 3, TypoProb: 0.85}
	var specs []dirty.Spec
	switch variant {
	case FewDuplicates:
		specs = []dirty.Spec{
			{Path: MoviePath, Prob: 0.2, MaxDups: 1, Errors: errors},
			{Path: TitlePath, Prob: 0.2, MaxDups: 1, Errors: errors},
			{Path: PersonPath, Prob: 0.2, MaxDups: 1, Errors: errors},
		}
	case ManyDuplicates:
		specs = []dirty.Spec{
			{Path: MoviePath, Prob: 1, MaxDups: 2, Errors: errors},
			{Path: PersonPath, Prob: 1, MaxDups: 2, Errors: errors},
			{Path: TitlePath, Prob: 0.2, MaxDups: 1, Errors: errors},
		}
	default:
		return nil, fmt.Errorf("dataset: unknown variant %v", variant)
	}
	res, err := dirty.Pollute(clean, specs, seed+1)
	if err != nil {
		return nil, fmt.Errorf("dataset: scalability: %w", err)
	}
	return res.Doc, nil
}

// ScalabilityConfig returns the candidate configuration for Experiment
// set 2: movie, title, and person candidates with window size 3 (the
// paper's choice), processed bottom-up.
func ScalabilityConfig(window int) *config.Config {
	if window == 0 {
		window = 3
	}
	return &config.Config{
		DefaultWindow: window,
		Candidates: []config.Candidate{
			{
				Name:  "movie",
				XPath: MoviePath,
				Paths: []config.PathDef{
					{ID: 1, RelPath: "title/text()"},
					{ID: 2, RelPath: "@year"},
					{ID: 3, RelPath: "@length"},
				},
				OD: []config.ODEntry{
					{PathID: 1, Relevance: 0.8},
					{PathID: 3, Relevance: 0.2, SimFunc: "numeric"},
				},
				Keys: []config.KeyDef{
					{Name: "key1", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K5"}}},
				},
				Threshold: 0.75,
			},
			{
				Name:  "title",
				XPath: TitlePath,
				Paths: []config.PathDef{{ID: 1, RelPath: "text()"}},
				OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
				Keys: []config.KeyDef{
					{Name: "key1", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
				},
				Threshold: 0.85,
			},
			{
				Name:  "person",
				XPath: PersonPath,
				Paths: []config.PathDef{
					{ID: 1, RelPath: "lastname/text()"},
					{ID: 2, RelPath: "firstname[1]/text()"},
				},
				OD: []config.ODEntry{
					{PathID: 1, Relevance: 0.6},
					{PathID: 2, Relevance: 0.4},
				},
				Keys: []config.KeyDef{
					{Name: "key1", Parts: []config.KeyPart{
						{PathID: 1, Order: 1, Pattern: "K1-K4"},
						{PathID: 2, Order: 2, Pattern: "K1,K2"},
					}},
				},
				Threshold: 0.8,
			},
		},
	}
}

// CDs2Options configure Data set 2 (500 clean FreeDB-like CDs plus 500
// generated duplicates, one per disc).
type CDs2Options struct {
	Discs int // clean disc count (default 500)
	Seed  int64
}

// DataSet2 builds the dirty CD data of Data set 2: a clean corpus and
// exactly one polluted duplicate per disc. Use config.DataSet2 for the
// matching configuration.
func DataSet2(opts CDs2Options) (*xmltree.Document, error) {
	if opts.Discs == 0 {
		opts.Discs = 500
	}
	clean := freedb.Generate(freedb.CleanOptions(opts.Discs, opts.Seed))
	res, err := dirty.Pollute(clean, []dirty.Spec{{
		Path:    DiscPath,
		Prob:    1,
		MaxDups: 1,
		Errors: dirty.ErrorModel{
			MinTypos:      1,
			MaxTypos:      2,
			TypoProb:      0.7,
			DropChildProb: 0.04,
			// Disc IDs are resubmitted nearly verbatim: the paper notes
			// the did "in only some cases is incorrect and missing",
			// which is what makes the did-prefix key the best one.
			// Artist and disc title, in contrast, are occasionally
			// mangled beyond OD recognition (re-typed submissions),
			// which is the headroom descendant similarity exploits in
			// Experiment set 3.
			PerElement: map[string]dirty.ErrorModel{
				"did":    {MinTypos: 1, MaxTypos: 1, TypoProb: 0.15},
				"artist": {MinTypos: 1, MaxTypos: 2, TypoProb: 0.7, SevereProb: 0.18},
				"dtitle": {MinTypos: 1, MaxTypos: 2, TypoProb: 0.7, SevereProb: 0.18},
			},
		},
	}}, opts.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("dataset: data set 2: %w", err)
	}
	return res.Doc, nil
}

// DataSet3 builds the large CD corpus of Data set 3 (default 10,000
// discs) with natural duplicates and the FP pathologies. Use
// config.DataSet3 for the matching configuration.
func DataSet3(discs int, seed int64) *xmltree.Document {
	if discs == 0 {
		discs = 10000
	}
	return freedb.Generate(freedb.DefaultOptions(discs, seed))
}
