package strutil

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestIsVowel(t *testing.T) {
	for _, r := range "aeiouAEIOU" {
		if !IsVowel(r) {
			t.Errorf("IsVowel(%q) = false, want true", r)
		}
	}
	for _, r := range "bcdXYZ19 ." {
		if IsVowel(r) {
			t.Errorf("IsVowel(%q) = true, want false", r)
		}
	}
}

func TestIsConsonant(t *testing.T) {
	cases := []struct {
		r    rune
		want bool
	}{
		{'b', true}, {'Z', true}, {'m', true},
		{'a', false}, {'E', false},
		{'1', false}, {' ', false}, {'-', false},
	}
	for _, c := range cases {
		if got := IsConsonant(c.r); got != c.want {
			t.Errorf("IsConsonant(%q) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestIsChar(t *testing.T) {
	for _, r := range "aZ09é" {
		if !IsChar(r) {
			t.Errorf("IsChar(%q) = false, want true", r)
		}
	}
	for _, r := range " .,-_!" {
		if IsChar(r) {
			t.Errorf("IsChar(%q) = true, want false", r)
		}
	}
}

func TestFold(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Amélie", "Amelie"},
		{"Der Schuß", "Der Schus"},
		{"Señor Müller", "Senor Muller"},
		{"ČŽŠ", "CZS"},
		{"plain", "plain"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Fold(c.in); got != c.want {
			t.Errorf("Fold(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  The  Matrix ", "THE MATRIX"},
		{"amélie", "AMELIE"},
		{"a\tb\nc", "A B C"},
		{"", ""},
		{"   ", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExtractClasses(t *testing.T) {
	s := "Mask of Zorro, 1998"
	if got := string(Consonants(s)); got != "MskfZrr" {
		t.Errorf("Consonants(%q) = %q, want %q", s, got, "MskfZrr")
	}
	if got := string(Digits(s)); got != "1998" {
		t.Errorf("Digits(%q) = %q, want %q", s, got, "1998")
	}
	if got := string(Chars(s)); got != "MaskofZorro1998" {
		t.Errorf("Chars(%q) = %q, want %q", s, got, "MaskofZorro1998")
	}
}

// Paper example (Sec. 2.2): key for ("Mask of Zorro", 1998) with first
// four consonants of the title and 3rd+4th digit of the year is MSKF98.
func TestPaperKeyExample(t *testing.T) {
	title := Normalize("Mask of Zorro")
	year := "1998"
	cons := Consonants(title)
	if len(cons) < 4 {
		t.Fatalf("too few consonants in %q", title)
	}
	key := string(cons[:4]) + year[2:4]
	if key != "MSKF98" {
		t.Errorf("key = %q, want MSKF98", key)
	}
}

func TestFields(t *testing.T) {
	got := Fields(" the  Matrix reloaded ")
	want := []string{"THE", "MATRIX", "RELOADED"}
	if len(got) != len(want) {
		t.Fatalf("Fields = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Fields[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCollapseSpaces(t *testing.T) {
	if got := CollapseSpaces("  a   b  "); got != "a b" {
		t.Errorf("CollapseSpaces = %q, want %q", got, "a b")
	}
}

// Property: Normalize is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Extract output is a subsequence of the input.
func TestExtractSubsequence(t *testing.T) {
	f := func(s string) bool {
		out := Chars(s)
		in := []rune(s)
		j := 0
		for _, r := range out {
			for j < len(in) && in[j] != r {
				j++
			}
			if j == len(in) {
				return false
			}
			j++
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: classes partition letters — every letter is vowel or
// consonant, never both.
func TestLetterClassPartition(t *testing.T) {
	f := func(s string) bool {
		for _, r := range s {
			if unicode.IsLetter(r) {
				if IsVowel(r) == IsConsonant(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fold never changes the rune count for our folding table
// (single-rune replacements only).
func TestFoldPreservesLength(t *testing.T) {
	f := func(s string) bool {
		return len([]rune(Fold(s))) == len([]rune(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeNoLeadingTrailingSpace(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return n == strings.TrimSpace(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFoldTableComplete exercises every row of the folding table.
func TestFoldTableComplete(t *testing.T) {
	groups := map[string]rune{
		"àáâãäåāăą": 'a', "ÀÁÂÃÄÅĀĂĄ": 'A',
		"èéêëēĕėęě": 'e', "ÈÉÊËĒĔĖĘĚ": 'E',
		"ìíîïĩīĭįı": 'i', "ÌÍÎÏĨĪĬĮİ": 'I',
		"òóôõöøōŏő": 'o', "ÒÓÔÕÖØŌŎŐ": 'O',
		"ùúûüũūŭůűų": 'u', "ÙÚÛÜŨŪŬŮŰŲ": 'U',
		"çćĉċč": 'c', "ÇĆĈĊČ": 'C',
		"ñńņň": 'n', "ÑŃŅŇ": 'N',
		"ýÿ": 'y', "ÝŸ": 'Y',
		"šśŝş": 's', "ŠŚŜŞ": 'S',
		"žźż": 'z', "ŽŹŻ": 'Z',
		"ð": 'd', "Ð": 'D', "þ": 't', "ß": 's',
	}
	for in, want := range groups {
		for _, r := range in {
			got := Fold(string(r))
			if got != string(want) {
				t.Errorf("Fold(%q) = %q, want %q", r, got, want)
			}
		}
	}
	// Non-table runes pass through untouched.
	for _, r := range "abcXYZ09 .季ж" {
		if Fold(string(r)) != string(r) {
			t.Errorf("Fold(%q) changed a non-table rune", r)
		}
	}
}
