// Package strutil provides string normalization and character-class
// helpers shared by key generation and similarity computation.
//
// SXNM key patterns address characters by class (consonant, character,
// digit) and 1-based position; this package implements the class
// predicates and the extraction primitives on which the key pattern
// compiler (internal/keygen) builds.
package strutil

import (
	"strings"
	"unicode"
)

// vowels is the set of characters treated as vowels by the consonant
// class K. The paper's key examples operate on ASCII-folded text, so we
// fold diacritics first (see Fold) and test against the plain vowels.
const vowels = "AEIOU"

// IsVowel reports whether r is an (upper-cased, folded) vowel letter.
func IsVowel(r rune) bool {
	return strings.ContainsRune(vowels, unicode.ToUpper(r))
}

// IsConsonant reports whether r is a letter that is not a vowel.
// This implements the K character class of SXNM key patterns.
func IsConsonant(r rune) bool {
	return unicode.IsLetter(r) && !IsVowel(r)
}

// IsChar reports whether r belongs to the C character class:
// any letter or digit. Whitespace and punctuation are excluded so that
// keys built from titles are insensitive to spacing and punctuation
// differences between duplicates.
func IsChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// IsDigit reports whether r belongs to the D character class.
func IsDigit(r rune) bool {
	return unicode.IsDigit(r)
}

// foldRune maps common Latin letters with diacritics to their ASCII
// base letter. It intentionally covers only the Latin-1/Latin Extended-A
// characters that occur in movie and CD metadata; anything else is
// returned unchanged.
func foldRune(r rune) rune {
	switch r {
	case 'à', 'á', 'â', 'ã', 'ä', 'å', 'ā', 'ă', 'ą':
		return 'a'
	case 'À', 'Á', 'Â', 'Ã', 'Ä', 'Å', 'Ā', 'Ă', 'Ą':
		return 'A'
	case 'è', 'é', 'ê', 'ë', 'ē', 'ĕ', 'ė', 'ę', 'ě':
		return 'e'
	case 'È', 'É', 'Ê', 'Ë', 'Ē', 'Ĕ', 'Ė', 'Ę', 'Ě':
		return 'E'
	case 'ì', 'í', 'î', 'ï', 'ĩ', 'ī', 'ĭ', 'į', 'ı':
		return 'i'
	case 'Ì', 'Í', 'Î', 'Ï', 'Ĩ', 'Ī', 'Ĭ', 'Į', 'İ':
		return 'I'
	case 'ò', 'ó', 'ô', 'õ', 'ö', 'ø', 'ō', 'ŏ', 'ő':
		return 'o'
	case 'Ò', 'Ó', 'Ô', 'Õ', 'Ö', 'Ø', 'Ō', 'Ŏ', 'Ő':
		return 'O'
	case 'ù', 'ú', 'û', 'ü', 'ũ', 'ū', 'ŭ', 'ů', 'ű', 'ų':
		return 'u'
	case 'Ù', 'Ú', 'Û', 'Ü', 'Ũ', 'Ū', 'Ŭ', 'Ů', 'Ű', 'Ų':
		return 'U'
	case 'ç', 'ć', 'ĉ', 'ċ', 'č':
		return 'c'
	case 'Ç', 'Ć', 'Ĉ', 'Ċ', 'Č':
		return 'C'
	case 'ñ', 'ń', 'ņ', 'ň':
		return 'n'
	case 'Ñ', 'Ń', 'Ņ', 'Ň':
		return 'N'
	case 'ý', 'ÿ':
		return 'y'
	case 'Ý', 'Ÿ':
		return 'Y'
	case 'š', 'ś', 'ŝ', 'ş':
		return 's'
	case 'Š', 'Ś', 'Ŝ', 'Ş':
		return 'S'
	case 'ž', 'ź', 'ż':
		return 'z'
	case 'Ž', 'Ź', 'Ż':
		return 'Z'
	case 'ð':
		return 'd'
	case 'Ð':
		return 'D'
	case 'þ':
		return 't'
	case 'ß':
		return 's'
	}
	return r
}

// Fold maps diacritics to ASCII base letters, leaving all other runes
// untouched. Folding happens before key extraction so that "Amélie" and
// "Amelie" generate identical keys.
func Fold(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		b.WriteRune(foldRune(r))
	}
	return b.String()
}

// Normalize upper-cases and diacritic-folds s and collapses runs of
// whitespace into single spaces. This is the canonical form on which
// keys are generated.
func Normalize(s string) string {
	s = Fold(s)
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			space = b.Len() > 0
			continue
		}
		if space {
			b.WriteByte(' ')
			space = false
		}
		b.WriteRune(unicode.ToUpper(r))
	}
	return b.String()
}

// Extract returns the runes of s (in order) for which class returns
// true. It is the shared primitive behind the K/C/D pattern classes.
func Extract(s string, class func(rune) bool) []rune {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if class(r) {
			out = append(out, r)
		}
	}
	return out
}

// Consonants returns the consonant letters of s in order.
func Consonants(s string) []rune { return Extract(s, IsConsonant) }

// Chars returns the letters and digits of s in order.
func Chars(s string) []rune { return Extract(s, IsChar) }

// Digits returns the digit runes of s in order.
func Digits(s string) []rune { return Extract(s, IsDigit) }

// Fields splits s on whitespace after normalization; convenient for
// token-level similarity measures.
func Fields(s string) []string {
	return strings.Fields(Normalize(s))
}

// CollapseSpaces trims s and collapses internal whitespace runs to a
// single space without changing case.
func CollapseSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
