package config

import (
	"strings"
	"testing"
)

const sampleConfigXML = `
<sxnm-config window="4" threshold="0.8">
  <candidate name="movie" xpath="movie_database/movies/movie" window="5">
    <path id="1" relPath="title/text()"/>
    <path id="3" relPath="@year"/>
    <od pid="1" relevance="0.8"/>
    <od pid="3" relevance="0.2" sim="year"/>
    <key name="key1">
      <part pid="1" order="1" pattern="K1,K2"/>
      <part pid="3" order="2" pattern="D3,D4"/>
    </key>
  </candidate>
  <candidate name="person" xpath="movie_database/movies/movie/people/person"
             rule="either" odThreshold="0.7">
    <path id="1" relPath="text()"/>
    <od pid="1" relevance="1"/>
    <key><part pid="1" order="1" pattern="C1-C6"/></key>
    <descendants use="false"/>
  </candidate>
</sxnm-config>`

func TestParseConfig(t *testing.T) {
	cfg, err := Parse(strings.NewReader(sampleConfigXML))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.DefaultWindow != 4 || cfg.DefaultThreshold != 0.8 {
		t.Errorf("defaults = %d, %v", cfg.DefaultWindow, cfg.DefaultThreshold)
	}
	m := cfg.Candidate("movie")
	if m == nil {
		t.Fatal("movie candidate missing")
	}
	if m.Window != 5 {
		t.Errorf("movie window = %d, want 5", m.Window)
	}
	if m.Threshold != 0.8 {
		t.Errorf("movie threshold = %v, want inherited 0.8", m.Threshold)
	}
	if len(m.Paths) != 2 || len(m.OD) != 2 || len(m.Keys) != 1 {
		t.Errorf("movie relations = %d paths, %d od, %d keys", len(m.Paths), len(m.OD), len(m.Keys))
	}
	if m.OD[1].SimFunc != "year" {
		t.Errorf("od sim = %q", m.OD[1].SimFunc)
	}
	p := cfg.Candidate("person")
	if p == nil {
		t.Fatal("person candidate missing")
	}
	if p.Rule != RuleEither || p.ODThreshold != 0.7 {
		t.Errorf("person rule = %q, odThreshold = %v", p.Rule, p.ODThreshold)
	}
	if p.DescendantsEnabled() {
		t.Error("person descendants should be disabled")
	}
	// Parse validates: keys are compiled.
	if len(m.CompiledKeys()) != 1 {
		t.Error("keys not compiled by Parse")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name, xml, want string
	}{
		{"not xml", "garbage", "parse"},
		{"wrong root", "<config/>", "want <sxnm-config>"},
		{"bad window", `<sxnm-config window="x"/>`, "attribute window"},
		{"bad threshold", `<sxnm-config threshold="x"/>`, "attribute threshold"},
		{"no candidates", `<sxnm-config/>`, "no candidates"},
		{"bad pid", `<sxnm-config><candidate name="c" xpath="a/b">
			<path id="z" relPath="text()"/></candidate></sxnm-config>`, "attribute id"},
		{"bad use flag", `<sxnm-config><candidate name="c" xpath="a/b">
			<path id="1" relPath="text()"/><od pid="1" relevance="1"/>
			<key><part pid="1" order="1" pattern="C1"/></key>
			<descendants use="maybe"/></candidate></sxnm-config>`, "descendants use"},
		{"invalid semantics", `<sxnm-config><candidate name="c" xpath="a/b">
			<path id="1" relPath="text()"/><od pid="7" relevance="1"/>
			<key><part pid="1" order="1" pattern="C1"/></key>
			</candidate></sxnm-config>`, "unknown path id 7"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.xml))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}

func TestConfigDocumentRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleConfigXML))
	if err != nil {
		t.Fatal(err)
	}
	serialized := orig.Document().String()
	again, err := Parse(strings.NewReader(serialized))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, serialized)
	}
	if len(again.Candidates) != len(orig.Candidates) {
		t.Fatalf("candidate count changed: %d vs %d", len(again.Candidates), len(orig.Candidates))
	}
	for i := range orig.Candidates {
		a, b := &orig.Candidates[i], &again.Candidates[i]
		if a.Name != b.Name || a.XPath != b.XPath || a.Window != b.Window ||
			a.Rule != b.Rule || a.Threshold != b.Threshold ||
			a.ODThreshold != b.ODThreshold || a.DescThreshold != b.DescThreshold {
			t.Errorf("candidate %q changed in round trip:\n%+v\nvs\n%+v", a.Name, a, b)
		}
		if len(a.Paths) != len(b.Paths) || len(a.OD) != len(b.OD) || len(a.Keys) != len(b.Keys) {
			t.Errorf("candidate %q relations changed", a.Name)
		}
		if a.DescendantsEnabled() != b.DescendantsEnabled() {
			t.Errorf("candidate %q descendants flag changed", a.Name)
		}
	}
}

func TestFixtureDocumentsRoundTrip(t *testing.T) {
	for name, mk := range map[string]func() *Config{
		"table1":   Table1Movie,
		"dataset1": func() *Config { return DataSet1(5) },
		"dataset2": func() *Config { return DataSet2(5) },
		"dataset3": func() *Config { return DataSet3(5) },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := mk()
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			out := cfg.Document().String()
			again, err := Parse(strings.NewReader(out))
			if err != nil {
				t.Fatalf("reparse: %v\n%s", err, out)
			}
			if len(again.Candidates) != len(cfg.Candidates) {
				t.Errorf("candidates %d vs %d", len(again.Candidates), len(cfg.Candidates))
			}
		})
	}
}
