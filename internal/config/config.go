// Package config models the SXNM configuration of Sec. 3.2: the set of
// candidates (XML schema elements subject to deduplication) and, per
// candidate, the PATH relation of relative paths, the OD relation of
// weighted object-description entries, and one or more KEY relations
// that define sort keys through character patterns.
//
// Configurations can be built in code or loaded from an XML document
// (the paper notes the configuration "is itself an XML document");
// see Parse in format.go.
package config

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/keygen"
	"repro/internal/xpath"
)

// PathDef is one row of the PATH_s relation: a unique id and a
// relative path addressing data inside a candidate element.
type PathDef struct {
	ID      int
	RelPath string

	compiled *xpath.Path
}

// Path returns the compiled relative path. Validate must have been
// called first (it compiles and caches); Path panics otherwise to
// surface programming errors early.
func (p *PathDef) Path() *xpath.Path {
	if p.compiled == nil {
		panic(fmt.Sprintf("config: path %d (%s) not compiled; call Config.Validate first", p.ID, p.RelPath))
	}
	return p.compiled
}

// ODEntry is one row of the OD_s relation: which path is compared,
// with what relevance (weight), and by which similarity function
// (empty = "edit", the paper's default).
type ODEntry struct {
	PathID    int
	Relevance float64
	SimFunc   string
}

// KeyPart is one row of a KEY_{s,i} relation.
type KeyPart struct {
	PathID  int
	Order   int
	Pattern string
}

// KeyDef is a complete key definition for one candidate. Multiple keys
// on a candidate enable the multi-pass method.
type KeyDef struct {
	Name  string
	Parts []KeyPart
}

// RuleKind selects how OD and descendant similarities classify a pair
// as duplicates.
type RuleKind string

const (
	// RuleCombined compares the weighted combination of OD and
	// descendant similarity (the paper's sim^comb, Sec. 3.4) against
	// Threshold. This is the default.
	RuleCombined RuleKind = "combined"
	// RuleEither classifies as duplicate when the OD similarity meets
	// ODThreshold or the descendant similarity meets DescThreshold —
	// the two-threshold scheme of Experiment set 3, where "a small
	// overlap in children is already sufficient".
	RuleEither RuleKind = "either"
	// RuleBoth requires both thresholds to be met (an equational-
	// theory-style conjunction).
	RuleBoth RuleKind = "both"
)

// Candidate configures duplicate detection for one XML schema element.
type Candidate struct {
	// Name uniquely identifies the candidate and labels its GK and CS
	// relations.
	Name string
	// XPath is the absolute path of the candidate's instances, e.g.
	// "movie_database/movies/movie".
	XPath string

	Paths []PathDef
	OD    []ODEntry
	Keys  []KeyDef

	// Window is the sliding-window size w_s; 0 means "use the run
	// default". Values below 2 (after defaulting) are rejected.
	Window int
	// Threshold classifies sim^comb under RuleCombined. 0 means "use
	// the run default".
	Threshold float64
	// ODThreshold and DescThreshold drive RuleEither / RuleBoth.
	ODThreshold   float64
	DescThreshold float64
	// Rule selects the classification rule; empty means RuleCombined.
	Rule RuleKind
	// ODWeight weighs OD vs. descendant similarity in sim^comb;
	// 0 means the paper's 0.5 (plain average).
	ODWeight float64
	// UseDescendants can be set to false to ignore descendant
	// information for this candidate even when descendant candidates
	// exist (the paper's "information about when not to use
	// descendants").
	UseDescendants *bool
	// AdaptiveKeySim, when positive, enables dynamic window extension
	// (the outlook's Lehti/Fankhauser-style precise blocking): the
	// window keeps growing backwards while the sort keys' normalized
	// edit similarity stays at or above this value.
	AdaptiveKeySim float64
	// AdaptiveMaxWindow caps the extended window; 0 means three times
	// the base window.
	AdaptiveMaxWindow int
	// RuleExpr, when non-empty, is an equational-theory expression
	// (see internal/rules) that replaces the threshold rules for this
	// candidate. It is compiled by sxnm.New; Validate only stores it.
	RuleExpr string

	compiledXPath *xpath.Path
	compiledKeys  []keygen.Key
	pathByID      map[int]*PathDef
}

// DescendantsEnabled reports whether descendant similarity is enabled
// (the default when unset).
func (c *Candidate) DescendantsEnabled() bool {
	return c.UseDescendants == nil || *c.UseDescendants
}

// AbsPath returns the compiled absolute candidate path (after Validate).
func (c *Candidate) AbsPath() *xpath.Path {
	if c.compiledXPath == nil {
		panic(fmt.Sprintf("config: candidate %q not compiled; call Config.Validate first", c.Name))
	}
	return c.compiledXPath
}

// CompiledKeys returns the candidate's key definitions with compiled
// patterns (after Validate).
func (c *Candidate) CompiledKeys() []keygen.Key {
	if c.compiledKeys == nil && len(c.Keys) > 0 {
		panic(fmt.Sprintf("config: candidate %q keys not compiled; call Config.Validate first", c.Name))
	}
	return c.compiledKeys
}

// PathByID resolves a PATH id (after Validate).
func (c *Candidate) PathByID(id int) (*PathDef, bool) {
	p, ok := c.pathByID[id]
	return p, ok
}

// Config is the full parameter set P of Sec. 3.2 plus run defaults.
type Config struct {
	Candidates []Candidate

	// DefaultWindow applies to candidates with Window == 0. Zero means 3,
	// the window the paper uses in its scalability experiments.
	DefaultWindow int
	// DefaultThreshold applies to candidates with Threshold == 0 under
	// RuleCombined. Zero means 0.75.
	DefaultThreshold float64
}

// Default values applied by Validate.
const (
	DefaultWindow    = 3
	DefaultThreshold = 0.75
	DefaultODWeight  = 0.5
)

// Candidate returns the candidate with the given name, or nil.
func (cfg *Config) Candidate(name string) *Candidate {
	for i := range cfg.Candidates {
		if cfg.Candidates[i].Name == name {
			return &cfg.Candidates[i]
		}
	}
	return nil
}

// Validate checks the configuration, compiles all paths, patterns, and
// keys, and fills in defaults. It must be called (directly or via
// sxnm.New) before the configuration is used.
func (cfg *Config) Validate() error {
	if len(cfg.Candidates) == 0 {
		return fmt.Errorf("config: no candidates defined")
	}
	if cfg.DefaultWindow == 0 {
		cfg.DefaultWindow = DefaultWindow
	}
	if cfg.DefaultWindow < 2 {
		return fmt.Errorf("config: default window %d < 2", cfg.DefaultWindow)
	}
	if cfg.DefaultThreshold == 0 {
		cfg.DefaultThreshold = DefaultThreshold
	}
	if err := checkUnit("default threshold", cfg.DefaultThreshold); err != nil {
		return err
	}
	seen := make(map[string]bool, len(cfg.Candidates))
	xpaths := make(map[string]string, len(cfg.Candidates))
	for i := range cfg.Candidates {
		c := &cfg.Candidates[i]
		if c.Name == "" {
			return fmt.Errorf("config: candidate %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("config: duplicate candidate name %q", c.Name)
		}
		seen[c.Name] = true
		if other, dup := xpaths[c.XPath]; dup {
			return fmt.Errorf("config: candidates %q and %q share xpath %q", other, c.Name, c.XPath)
		}
		xpaths[c.XPath] = c.Name
		if err := c.validate(cfg); err != nil {
			return fmt.Errorf("config: candidate %q: %w", c.Name, err)
		}
	}
	return nil
}

func (c *Candidate) validate(cfg *Config) error {
	if c.XPath == "" {
		return fmt.Errorf("no xpath")
	}
	p, err := xpath.Compile(c.XPath)
	if err != nil {
		return err
	}
	if p.IsValuePath() {
		return fmt.Errorf("candidate xpath %q must select elements, not values", c.XPath)
	}
	c.compiledXPath = p

	if c.Window == 0 {
		c.Window = cfg.DefaultWindow
	}
	if c.Window < 2 {
		return fmt.Errorf("window %d < 2", c.Window)
	}
	switch c.Rule {
	case "", RuleCombined:
		c.Rule = RuleCombined
		if c.Threshold == 0 {
			c.Threshold = cfg.DefaultThreshold
		}
		if err := checkUnit("threshold", c.Threshold); err != nil {
			return err
		}
	case RuleEither, RuleBoth:
		if err := checkUnit("od threshold", c.ODThreshold); err != nil {
			return err
		}
		if c.DescendantsEnabled() {
			if err := checkUnit("descendants threshold", c.DescThreshold); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown rule %q (want combined, either, or both)", c.Rule)
	}
	if c.ODWeight == 0 {
		c.ODWeight = DefaultODWeight
	}
	if err := checkUnit("od weight", c.ODWeight); err != nil {
		return err
	}
	if err := checkUnit("adaptive key similarity", c.AdaptiveKeySim); err != nil {
		return err
	}
	if c.AdaptiveMaxWindow < 0 || (c.AdaptiveMaxWindow > 0 && c.AdaptiveMaxWindow < c.Window) {
		return fmt.Errorf("adaptive max window %d must be 0 or >= window %d", c.AdaptiveMaxWindow, c.Window)
	}

	// PATH relation: unique ids, compilable relative value paths.
	if len(c.Paths) == 0 {
		return fmt.Errorf("no paths defined")
	}
	c.pathByID = make(map[int]*PathDef, len(c.Paths))
	for i := range c.Paths {
		pd := &c.Paths[i]
		if _, dup := c.pathByID[pd.ID]; dup {
			return fmt.Errorf("duplicate path id %d", pd.ID)
		}
		cp, err := xpath.Compile(pd.RelPath)
		if err != nil {
			return fmt.Errorf("path %d: %w", pd.ID, err)
		}
		pd.compiled = cp
		c.pathByID[pd.ID] = pd
	}

	// OD relation: valid references, positive relevances, known sims.
	if len(c.OD) == 0 {
		return fmt.Errorf("no object description defined")
	}
	var totalRel float64
	for _, od := range c.OD {
		if _, ok := c.pathByID[od.PathID]; !ok {
			return fmt.Errorf("od references unknown path id %d", od.PathID)
		}
		if od.Relevance <= 0 {
			return fmt.Errorf("od path %d: relevance %v must be positive", od.PathID, od.Relevance)
		}
		if _, err := odSim(od); err != nil {
			return fmt.Errorf("od path %d: %w", od.PathID, err)
		}
		totalRel += od.Relevance
	}
	if math.Abs(totalRel-1) > 0.25 {
		return fmt.Errorf("od relevances sum to %.3f; want approximately 1", totalRel)
	}

	// KEY relations: at least one key, valid path refs, unique orders,
	// compilable patterns.
	if len(c.Keys) == 0 {
		return fmt.Errorf("no keys defined")
	}
	c.compiledKeys = make([]keygen.Key, 0, len(c.Keys))
	for ki, kd := range c.Keys {
		name := kd.Name
		if name == "" {
			name = fmt.Sprintf("key%d", ki+1)
		}
		if len(kd.Parts) == 0 {
			return fmt.Errorf("key %q has no parts", name)
		}
		orders := map[int]bool{}
		ck := keygen.Key{Name: name}
		for _, part := range kd.Parts {
			if _, ok := c.pathByID[part.PathID]; !ok {
				return fmt.Errorf("key %q references unknown path id %d", name, part.PathID)
			}
			if orders[part.Order] {
				return fmt.Errorf("key %q has duplicate order %d", name, part.Order)
			}
			orders[part.Order] = true
			pat, err := keygen.Compile(part.Pattern)
			if err != nil {
				return fmt.Errorf("key %q: %w", name, err)
			}
			ck.Parts = append(ck.Parts, keygen.Part{PathID: part.PathID, Order: part.Order, Pattern: pat})
		}
		c.compiledKeys = append(c.compiledKeys, ck)
	}
	sortODByPath(c.OD)
	return nil
}

func sortODByPath(od []ODEntry) {
	sort.SliceStable(od, func(i, j int) bool { return od[i].PathID < od[j].PathID })
}

func checkUnit(name string, v float64) error {
	if v < 0 || v > 1 || math.IsNaN(v) {
		return fmt.Errorf("%s %v outside [0,1]", name, v)
	}
	return nil
}
