package config

import (
	"strings"
	"testing"
)

func validConfig() *Config {
	return Table1Movie()
}

func TestValidateFixtures(t *testing.T) {
	fixtures := map[string]*Config{
		"table1":   Table1Movie(),
		"dataset1": DataSet1(0),
		"dataset2": DataSet2(0),
		"dataset3": DataSet3(0),
	}
	for name, cfg := range fixtures {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
		}
	}
}

func TestValidateDefaults(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.DefaultWindow != DefaultWindow {
		t.Errorf("DefaultWindow = %d, want %d", cfg.DefaultWindow, DefaultWindow)
	}
	c := cfg.Candidate("movie")
	if c.Window != DefaultWindow {
		t.Errorf("candidate window = %d", c.Window)
	}
	if c.Threshold != DefaultThreshold {
		t.Errorf("candidate threshold = %v", c.Threshold)
	}
	if c.Rule != RuleCombined {
		t.Errorf("rule = %q", c.Rule)
	}
	if c.ODWeight != DefaultODWeight {
		t.Errorf("od weight = %v", c.ODWeight)
	}
	if !c.DescendantsEnabled() {
		t.Error("descendants should default to enabled")
	}
}

func TestValidateCompiles(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c := cfg.Candidate("movie")
	if c.AbsPath() == nil {
		t.Error("abs path not compiled")
	}
	if len(c.CompiledKeys()) != 2 {
		t.Errorf("compiled keys = %d, want 2", len(c.CompiledKeys()))
	}
	if p, ok := c.PathByID(1); !ok || p.Path() == nil {
		t.Error("path 1 not compiled")
	}
	if _, ok := c.PathByID(99); ok {
		t.Error("unknown path id resolved")
	}
}

func TestValidateErrors(t *testing.T) {
	mutate := func(f func(*Config)) *Config {
		cfg := validConfig()
		f(cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  *Config
		want string
	}{
		{"no candidates", &Config{}, "no candidates"},
		{"empty name", mutate(func(c *Config) { c.Candidates[0].Name = "" }), "has no name"},
		{"dup name", mutate(func(c *Config) {
			c.Candidates = append(c.Candidates, c.Candidates[0])
		}), "duplicate candidate name"},
		{"dup xpath", mutate(func(c *Config) {
			c2 := Table1Movie().Candidates[0]
			c2.Name = "other"
			c.Candidates = append(c.Candidates, c2)
		}), "share xpath"},
		{"no xpath", mutate(func(c *Config) { c.Candidates[0].XPath = "" }), "no xpath"},
		{"value xpath", mutate(func(c *Config) { c.Candidates[0].XPath = "a/b/text()" }), "must select elements"},
		{"bad xpath", mutate(func(c *Config) { c.Candidates[0].XPath = "a[[" }), "xpath"},
		{"window 1", mutate(func(c *Config) { c.Candidates[0].Window = 1 }), "window 1 < 2"},
		{"bad rule", mutate(func(c *Config) { c.Candidates[0].Rule = "bogus" }), "unknown rule"},
		{"threshold range", mutate(func(c *Config) { c.Candidates[0].Threshold = 1.5 }), "outside [0,1]"},
		{"no paths", mutate(func(c *Config) { c.Candidates[0].Paths = nil }), "no paths"},
		{"dup path id", mutate(func(c *Config) {
			c.Candidates[0].Paths = append(c.Candidates[0].Paths, PathDef{ID: 1, RelPath: "x/text()"})
		}), "duplicate path id"},
		{"bad rel path", mutate(func(c *Config) { c.Candidates[0].Paths[0].RelPath = "@" }), "path 1"},
		{"no od", mutate(func(c *Config) { c.Candidates[0].OD = nil }), "no object description"},
		{"od bad pid", mutate(func(c *Config) { c.Candidates[0].OD[0].PathID = 42 }), "unknown path id 42"},
		{"od bad relevance", mutate(func(c *Config) { c.Candidates[0].OD[0].Relevance = -0.5 }), "must be positive"},
		{"od bad sim", mutate(func(c *Config) { c.Candidates[0].OD[0].SimFunc = "nope" }), "unknown function"},
		{"od relevance sum", mutate(func(c *Config) {
			c.Candidates[0].OD = []ODEntry{{PathID: 1, Relevance: 0.1}}
		}), "sum to"},
		{"no keys", mutate(func(c *Config) { c.Candidates[0].Keys = nil }), "no keys"},
		{"empty key", mutate(func(c *Config) { c.Candidates[0].Keys[0].Parts = nil }), "no parts"},
		{"key bad pid", mutate(func(c *Config) { c.Candidates[0].Keys[0].Parts[0].PathID = 42 }), "unknown path id 42"},
		{"key dup order", mutate(func(c *Config) {
			c.Candidates[0].Keys[0].Parts[1].Order = c.Candidates[0].Keys[0].Parts[0].Order
		}), "duplicate order"},
		{"key bad pattern", mutate(func(c *Config) { c.Candidates[0].Keys[0].Parts[0].Pattern = "Z9" }), "unknown class"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err, c.want)
			}
		})
	}
}

func TestRuleEitherRequiresThresholds(t *testing.T) {
	cfg := validConfig()
	cfg.Candidates[0].Rule = RuleEither
	cfg.Candidates[0].ODThreshold = 0.65
	cfg.Candidates[0].DescThreshold = 0.3
	if err := cfg.Validate(); err != nil {
		t.Errorf("either rule with thresholds: %v", err)
	}
	bad := validConfig()
	bad.Candidates[0].Rule = RuleEither
	bad.Candidates[0].ODThreshold = 1.7
	if err := bad.Validate(); err == nil {
		t.Error("od threshold 1.7 should fail")
	}
}

func TestCandidateLookup(t *testing.T) {
	cfg := validConfig()
	if cfg.Candidate("movie") == nil {
		t.Error("movie candidate not found")
	}
	if cfg.Candidate("absent") != nil {
		t.Error("absent candidate found")
	}
}

func TestODFields(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	fields, err := cfg.Candidate("movie").ODFields()
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 {
		t.Fatalf("fields = %d, want 2", len(fields))
	}
	if fields[0].Relevance != 0.8 || fields[1].Relevance != 0.2 {
		t.Errorf("relevances = %v, %v", fields[0].Relevance, fields[1].Relevance)
	}
	if fields[0].Sim == nil {
		t.Error("sim func not resolved")
	}
}

func TestSetWindows(t *testing.T) {
	cfg := DataSet2(0)
	cfg.SetWindows(7)
	for _, c := range cfg.Candidates {
		if c.Window != 7 {
			t.Errorf("candidate %q window = %d, want 7", c.Name, c.Window)
		}
	}
}

func TestKeepKeys(t *testing.T) {
	cfg := DataSet1(0)
	if !cfg.KeepKeys("movie", 1) {
		t.Fatal("KeepKeys failed")
	}
	c := cfg.Candidate("movie")
	if len(c.Keys) != 1 || c.Keys[0].Name != "key2" {
		t.Errorf("kept keys = %v", c.Keys)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("validate after KeepKeys: %v", err)
	}
	if len(c.CompiledKeys()) != 1 {
		t.Error("compiled keys not rebuilt")
	}
	if cfg.KeepKeys("movie", 5) {
		t.Error("out of range index should fail")
	}
	if cfg.KeepKeys("absent", 0) {
		t.Error("unknown candidate should fail")
	}
}

func TestDataSet1KeyShapes(t *testing.T) {
	cfg := DataSet1(0)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	keys := cfg.Candidate("movie").CompiledKeys()
	if len(keys) != 3 {
		t.Fatalf("keys = %d, want 3", len(keys))
	}
	lookup := func(pid int) string {
		switch pid {
		case 1:
			return "The Shawshank Redemption"
		case 2:
			return "1994"
		case 3:
			return "142"
		}
		return ""
	}
	// Key 1: first five consonants of the title.
	if got := keys[0].Generate(lookup); got != "THSHW" {
		t.Errorf("key1 = %q, want THSHW", got)
	}
	// Key 2 leads with year digits 3,4.
	if got := keys[1].Generate(lookup); got != "94TH" {
		t.Errorf("key2 = %q, want 94TH", got)
	}
	// Key 3 leads with length digits 1,2.
	if got := keys[2].Generate(lookup); got != "14THSH" {
		t.Errorf("key3 = %q, want 14THSH", got)
	}
}
