package config

// Fixtures reproducing the paper's configuration tables. Each function
// returns a fresh, unvalidated Config so callers may adjust windows and
// thresholds before validating.

// Table1Movie reproduces Table 1: the PATH, OD, and two KEY relations
// for <movie> elements used in the illustrative example of Sec. 3.1
// (the Matrix movie of Fig. 2(a) yields keys MT99 and 5MA).
func Table1Movie() *Config {
	return &Config{
		Candidates: []Candidate{{
			Name:  "movie",
			XPath: "movie_database/movies/movie",
			Paths: []PathDef{
				{ID: 1, RelPath: "title/text()"},
				{ID: 2, RelPath: "@ID"},
				{ID: 3, RelPath: "@year"},
			},
			OD: []ODEntry{
				{PathID: 1, Relevance: 0.8},
				{PathID: 3, Relevance: 0.2},
			},
			Keys: []KeyDef{
				{Name: "key1", Parts: []KeyPart{
					{PathID: 1, Order: 1, Pattern: "K1,K2"},
					{PathID: 3, Order: 2, Pattern: "D3,D4"},
				}},
				{Name: "key2", Parts: []KeyPart{
					{PathID: 2, Order: 1, Pattern: "D1"},
					{PathID: 1, Order: 2, Pattern: "C1,C2"},
				}},
			},
		}},
	}
}

// DataSet1 reproduces Table 3(a): the configuration for the artificial
// movie data of Data set 1. The object description is title/text()
// (relevance 0.8) and @length (relevance 0.2), as specified in Sec. 4.1.
//
// The three keys follow the paper's discussion: Key 1 sorts by the
// first five title consonants (best), Key 2 leads with the year digits
// (worst — missing or dirty years destroy the sort order), Key 3 leads
// with the length digits.
func DataSet1(window int) *Config {
	return &Config{
		DefaultWindow: windowOrDefault(window),
		Candidates: []Candidate{{
			Name:  "movie",
			XPath: "movie_database/movies/movie",
			Paths: []PathDef{
				{ID: 1, RelPath: "title/text()"},
				{ID: 2, RelPath: "@year"},
				{ID: 3, RelPath: "@length"},
			},
			OD: []ODEntry{
				{PathID: 1, Relevance: 0.8},
				{PathID: 3, Relevance: 0.2, SimFunc: "numeric"},
			},
			Keys: []KeyDef{
				{Name: "key1", Parts: []KeyPart{
					{PathID: 1, Order: 1, Pattern: "K1-K5"},
				}},
				{Name: "key2", Parts: []KeyPart{
					{PathID: 2, Order: 1, Pattern: "D3,D4"},
					{PathID: 1, Order: 2, Pattern: "K1,K2"},
				}},
				{Name: "key3", Parts: []KeyPart{
					{PathID: 3, Order: 1, Pattern: "D1,D2"},
					{PathID: 1, Order: 2, Pattern: "K1-K4"},
				}},
			},
			Threshold: 0.8,
		}},
	}
}

// DataSet2 reproduces Table 3(b): the CD configuration for Data set 2.
// The disc object description is did/text(), artist[1]/text(), and
// dtitle[1]/text() with relevancies 0.4, 0.3, 0.3 (Sec. 4.1).
// Candidates are disc and its descendant disc/tracks/title, enabling
// the bottom-up use of track-title duplicate clusters.
//
// The disc candidate uses the two-threshold rule of Experiment set 3:
// OD threshold 0.65 (the paper's optimum) and descendants threshold
// 0.3 (the paper's best).
func DataSet2(window int) *Config {
	return &Config{
		DefaultWindow: windowOrDefault(window),
		Candidates: []Candidate{
			{
				Name:  "disc",
				XPath: "cds/disc",
				Paths: []PathDef{
					{ID: 1, RelPath: "did/text()"},
					{ID: 2, RelPath: "artist[1]/text()"},
					{ID: 3, RelPath: "dtitle[1]/text()"},
					{ID: 4, RelPath: "genre/text()"},
					{ID: 5, RelPath: "year/text()"},
				},
				OD: []ODEntry{
					{PathID: 1, Relevance: 0.4},
					{PathID: 2, Relevance: 0.3},
					{PathID: 3, Relevance: 0.3},
				},
				Keys: []KeyDef{
					{Name: "key1", Parts: []KeyPart{
						{PathID: 2, Order: 1, Pattern: "K1-K4"},
						{PathID: 5, Order: 2, Pattern: "D3,D4"},
					}},
					{Name: "key2", Parts: []KeyPart{
						{PathID: 1, Order: 1, Pattern: "C1-C4"},
						{PathID: 3, Order: 2, Pattern: "C1-C4"},
					}},
					{Name: "key3", Parts: []KeyPart{
						{PathID: 4, Order: 1, Pattern: "C1,C2"},
						{PathID: 5, Order: 2, Pattern: "D3,D4"},
						{PathID: 2, Order: 3, Pattern: "K1,K2"},
						{PathID: 1, Order: 4, Pattern: "C1,C2"},
					}},
				},
				Rule:          RuleEither,
				ODThreshold:   0.65,
				DescThreshold: 0.3,
			},
			trackTitleCandidate("cds/disc/tracks/title"),
		},
	}
}

// DataSet3 reproduces Table 3(c): the configuration for the large
// real-world CD corpus of Data set 3. Candidates are disc and its
// descendants disc/dtitle, disc/artist, and disc/tracks/title
// (Sec. 4.1). Key 1 leads with the disc title consonants; Key 2 is the
// did-prefix key that the paper reports as the most precise.
func DataSet3(window int) *Config {
	return &Config{
		DefaultWindow: windowOrDefault(window),
		Candidates: []Candidate{
			{
				Name:  "disc",
				XPath: "cds/disc",
				Paths: []PathDef{
					{ID: 1, RelPath: "did/text()"},
					{ID: 2, RelPath: "artist[1]/text()"},
					{ID: 3, RelPath: "dtitle[1]/text()"},
				},
				OD: []ODEntry{
					{PathID: 1, Relevance: 0.4},
					{PathID: 2, Relevance: 0.3},
					{PathID: 3, Relevance: 0.3},
				},
				Keys: []KeyDef{
					{Name: "key1", Parts: []KeyPart{
						{PathID: 3, Order: 1, Pattern: "K1-K6"},
						{PathID: 2, Order: 2, Pattern: "K1-K4"},
					}},
					{Name: "key2", Parts: []KeyPart{
						{PathID: 1, Order: 1, Pattern: "C1-C4"},
						{PathID: 3, Order: 2, Pattern: "C1-C4"},
					}},
				},
				Rule:          RuleEither,
				ODThreshold:   0.6,
				DescThreshold: 0.5,
			},
			textCandidate("dtitle", "cds/disc/dtitle"),
			textCandidate("artist", "cds/disc/artist"),
			trackTitleCandidate("cds/disc/tracks/title"),
		},
	}
}

// trackTitleCandidate configures the disc/tracks/title candidate used
// by Data sets 2 and 3: OD is the text node with relevance 1, the key
// is the first six characters of the text (Table 3(b) last row).
func trackTitleCandidate(xp string) Candidate {
	return textCandidate("title", xp)
}

// textCandidate builds a leaf candidate whose OD and key both derive
// from its text() node, per the paper's convention ("When not
// specified, the OD of a candidate is its text node with relative path
// text() and relevance 1") and the C1-C6 keys of Table 3.
func textCandidate(name, xp string) Candidate {
	return Candidate{
		Name:  name,
		XPath: xp,
		Paths: []PathDef{{ID: 1, RelPath: "text()"}},
		OD:    []ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []KeyDef{
			{Name: "key1", Parts: []KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
		},
		Threshold: 0.85,
	}
}

func windowOrDefault(w int) int {
	if w <= 0 {
		return DefaultWindow
	}
	return w
}

// SetWindows sets the window size of every candidate; convenient for
// the window-size sweeps of Experiment set 1.
func (cfg *Config) SetWindows(w int) {
	cfg.DefaultWindow = w
	for i := range cfg.Candidates {
		cfg.Candidates[i].Window = w
	}
}

// KeepKeys restricts the named candidate to the single key at the given
// index (0-based), enabling the single-pass runs of Experiment set 1.
// It returns false if the candidate or index does not exist.
func (cfg *Config) KeepKeys(candidate string, index int) bool {
	c := cfg.Candidate(candidate)
	if c == nil || index < 0 || index >= len(c.Keys) {
		return false
	}
	c.Keys = []KeyDef{c.Keys[index]}
	c.compiledKeys = nil
	return true
}
