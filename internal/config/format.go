package config

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/similarity"
	"repro/internal/xmltree"
)

// odSim resolves the similarity function configured for an OD entry.
func odSim(od ODEntry) (similarity.Func, error) {
	return similarity.ByName(od.SimFunc)
}

// ODFields materializes the similarity.ODField slice for a validated
// candidate, in the canonical (PathID-sorted) OD order.
func (c *Candidate) ODFields() ([]similarity.ODField, error) {
	fields := make([]similarity.ODField, len(c.OD))
	for i, od := range c.OD {
		fn, err := odSim(od)
		if err != nil {
			return nil, err
		}
		fields[i] = similarity.ODField{Relevance: od.Relevance, Sim: fn}
	}
	return fields, nil
}

// Parse reads a configuration from its XML representation:
//
//	<sxnm-config window="3" threshold="0.75">
//	  <candidate name="movie" xpath="movie_database/movies/movie"
//	             window="5" threshold="0.8" rule="combined">
//	    <path id="1" relPath="title/text()"/>
//	    <path id="3" relPath="@year"/>
//	    <od pid="1" relevance="0.8" sim="edit"/>
//	    <od pid="3" relevance="0.2" sim="year"/>
//	    <key name="key1">
//	      <part pid="1" order="1" pattern="K1,K2"/>
//	      <part pid="3" order="2" pattern="D3,D4"/>
//	    </key>
//	    <descendants use="true" threshold="0.3"/>
//	  </candidate>
//	</sxnm-config>
//
// The returned configuration is already validated.
func Parse(r io.Reader) (*Config, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return FromDocument(doc)
}

// FromDocument converts a parsed configuration document and validates it.
func FromDocument(doc *xmltree.Document) (*Config, error) {
	root := doc.Root
	if root.Name != "sxnm-config" {
		return nil, fmt.Errorf("config: root element is <%s>, want <sxnm-config>", root.Name)
	}
	cfg := &Config{}
	var err error
	if cfg.DefaultWindow, err = intAttr(root, "window", 0); err != nil {
		return nil, err
	}
	if cfg.DefaultThreshold, err = floatAttr(root, "threshold", 0); err != nil {
		return nil, err
	}
	for _, ce := range root.ChildElements("candidate") {
		cand, err := parseCandidate(ce)
		if err != nil {
			return nil, err
		}
		cfg.Candidates = append(cfg.Candidates, cand)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func parseCandidate(e *xmltree.Node) (Candidate, error) {
	var c Candidate
	c.Name, _ = e.Attr("name")
	c.XPath, _ = e.Attr("xpath")
	where := fmt.Sprintf("config: candidate %q", c.Name)
	var err error
	if c.Window, err = intAttr(e, "window", 0); err != nil {
		return c, fmt.Errorf("%s: %w", where, err)
	}
	if c.Threshold, err = floatAttr(e, "threshold", 0); err != nil {
		return c, fmt.Errorf("%s: %w", where, err)
	}
	if c.ODThreshold, err = floatAttr(e, "odThreshold", 0); err != nil {
		return c, fmt.Errorf("%s: %w", where, err)
	}
	if c.ODWeight, err = floatAttr(e, "odWeight", 0); err != nil {
		return c, fmt.Errorf("%s: %w", where, err)
	}
	if c.AdaptiveKeySim, err = floatAttr(e, "adaptiveKeySim", 0); err != nil {
		return c, fmt.Errorf("%s: %w", where, err)
	}
	if c.AdaptiveMaxWindow, err = intAttr(e, "adaptiveMaxWindow", 0); err != nil {
		return c, fmt.Errorf("%s: %w", where, err)
	}
	if rule, ok := e.Attr("rule"); ok {
		c.Rule = RuleKind(rule)
	}
	for _, pe := range e.ChildElements("path") {
		id, err := intAttr(pe, "id", 0)
		if err != nil {
			return c, fmt.Errorf("%s: path: %w", where, err)
		}
		rel, _ := pe.Attr("relPath")
		c.Paths = append(c.Paths, PathDef{ID: id, RelPath: rel})
	}
	for _, oe := range e.ChildElements("od") {
		pid, err := intAttr(oe, "pid", 0)
		if err != nil {
			return c, fmt.Errorf("%s: od: %w", where, err)
		}
		rel, err := floatAttr(oe, "relevance", 0)
		if err != nil {
			return c, fmt.Errorf("%s: od: %w", where, err)
		}
		sim, _ := oe.Attr("sim")
		c.OD = append(c.OD, ODEntry{PathID: pid, Relevance: rel, SimFunc: sim})
	}
	for _, ke := range e.ChildElements("key") {
		var kd KeyDef
		kd.Name, _ = ke.Attr("name")
		for _, pe := range ke.ChildElements("part") {
			pid, err := intAttr(pe, "pid", 0)
			if err != nil {
				return c, fmt.Errorf("%s: key %q: %w", where, kd.Name, err)
			}
			order, err := intAttr(pe, "order", 0)
			if err != nil {
				return c, fmt.Errorf("%s: key %q: %w", where, kd.Name, err)
			}
			pattern, _ := pe.Attr("pattern")
			kd.Parts = append(kd.Parts, KeyPart{PathID: pid, Order: order, Pattern: pattern})
		}
		c.Keys = append(c.Keys, kd)
	}
	if re := e.FirstChildElement("rule"); re != nil {
		c.RuleExpr = re.Text()
	}
	if de := e.FirstChildElement("descendants"); de != nil {
		if useStr, ok := de.Attr("use"); ok {
			use, err := strconv.ParseBool(useStr)
			if err != nil {
				return c, fmt.Errorf("%s: descendants use=%q: %w", where, useStr, err)
			}
			c.UseDescendants = &use
		}
		if c.DescThreshold, err = floatAttr(de, "threshold", 0); err != nil {
			return c, fmt.Errorf("%s: descendants: %w", where, err)
		}
	}
	return c, nil
}

// Document renders the configuration back to its XML form; Parse and
// Document round-trip.
func (cfg *Config) Document() *xmltree.Document {
	root := xmltree.NewElement("sxnm-config")
	if cfg.DefaultWindow != 0 {
		root.SetAttr("window", strconv.Itoa(cfg.DefaultWindow))
	}
	if cfg.DefaultThreshold != 0 {
		root.SetAttr("threshold", formatFloat(cfg.DefaultThreshold))
	}
	for i := range cfg.Candidates {
		root.AppendChild(candidateElement(&cfg.Candidates[i]))
	}
	return xmltree.NewDocument(root)
}

func candidateElement(c *Candidate) *xmltree.Node {
	e := xmltree.NewElement("candidate")
	e.SetAttr("name", c.Name)
	e.SetAttr("xpath", c.XPath)
	if c.Window != 0 {
		e.SetAttr("window", strconv.Itoa(c.Window))
	}
	if c.Rule != "" && c.Rule != RuleCombined {
		e.SetAttr("rule", string(c.Rule))
	}
	if c.Threshold != 0 {
		e.SetAttr("threshold", formatFloat(c.Threshold))
	}
	if c.ODThreshold != 0 {
		e.SetAttr("odThreshold", formatFloat(c.ODThreshold))
	}
	if c.ODWeight != 0 && c.ODWeight != DefaultODWeight {
		e.SetAttr("odWeight", formatFloat(c.ODWeight))
	}
	if c.AdaptiveKeySim != 0 {
		e.SetAttr("adaptiveKeySim", formatFloat(c.AdaptiveKeySim))
	}
	if c.AdaptiveMaxWindow != 0 {
		e.SetAttr("adaptiveMaxWindow", strconv.Itoa(c.AdaptiveMaxWindow))
	}
	for _, p := range c.Paths {
		pe := xmltree.NewElement("path")
		pe.SetAttr("id", strconv.Itoa(p.ID))
		pe.SetAttr("relPath", p.RelPath)
		e.AppendChild(pe)
	}
	for _, od := range c.OD {
		oe := xmltree.NewElement("od")
		oe.SetAttr("pid", strconv.Itoa(od.PathID))
		oe.SetAttr("relevance", formatFloat(od.Relevance))
		if od.SimFunc != "" {
			oe.SetAttr("sim", od.SimFunc)
		}
		e.AppendChild(oe)
	}
	for _, k := range c.Keys {
		ke := xmltree.NewElement("key")
		if k.Name != "" {
			ke.SetAttr("name", k.Name)
		}
		for _, part := range k.Parts {
			pe := xmltree.NewElement("part")
			pe.SetAttr("pid", strconv.Itoa(part.PathID))
			pe.SetAttr("order", strconv.Itoa(part.Order))
			pe.SetAttr("pattern", part.Pattern)
			ke.AppendChild(pe)
		}
		e.AppendChild(ke)
	}
	if c.RuleExpr != "" {
		re := xmltree.NewElement("rule")
		re.SetText(c.RuleExpr)
		e.AppendChild(re)
	}
	if c.UseDescendants != nil || c.DescThreshold != 0 {
		de := xmltree.NewElement("descendants")
		if c.UseDescendants != nil {
			de.SetAttr("use", strconv.FormatBool(*c.UseDescendants))
		}
		if c.DescThreshold != 0 {
			de.SetAttr("threshold", formatFloat(c.DescThreshold))
		}
		e.AppendChild(de)
	}
	return e
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func intAttr(e *xmltree.Node, name string, def int) (int, error) {
	s, ok := e.Attr(name)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("attribute %s=%q: %w", name, s, err)
	}
	return n, nil
}

func floatAttr(e *xmltree.Node, name string, def float64) (float64, error) {
	s, ok := e.Attr(name)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("attribute %s=%q: %w", name, s, err)
	}
	return f, nil
}
