package baseline

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/xmltree"
)

func movieConfig(window int) *config.Config {
	cfg := config.DataSet1(window)
	return cfg
}

func smallDirtyMovies(t *testing.T, n int, seed int64) *xmltree.Document {
	t.Helper()
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestAllPairsFindsEverythingWindowedFinds(t *testing.T) {
	doc := smallDirtyMovies(t, 120, 42)
	cfg := movieConfig(5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	windowed, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := movieConfig(5)
	if err := cfg2.Validate(); err != nil {
		t.Fatal(err)
	}
	all, err := AllPairs(doc, cfg2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every pair the windowed method finds, all-pairs must also find
	// (same similarity, superset of comparisons).
	wp := windowed.Clusters["movie"].DuplicatePairs()
	ap := map[string]bool{}
	for _, p := range all.Clusters["movie"].DuplicatePairs() {
		ap[fmt.Sprintf("%d-%d", p.A, p.B)] = true
	}
	for _, p := range wp {
		if !ap[fmt.Sprintf("%d-%d", p.A, p.B)] {
			t.Errorf("windowed pair (%d,%d) missing from all-pairs", p.A, p.B)
		}
	}
	// All-pairs performs C(n,2) comparisons.
	n := windowed.Stats.Candidates["movie"].Rows
	if all.Comparisons != n*(n-1)/2 {
		t.Errorf("all-pairs comparisons = %d, want %d", all.Comparisons, n*(n-1)/2)
	}
	if all.Duration <= 0 {
		t.Error("duration not measured")
	}
}

func TestAllPairsRecallCeiling(t *testing.T) {
	doc := smallDirtyMovies(t, 150, 7)
	cfg := movieConfig(3)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	all, err := AllPairs(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gold, err := eval.BuildGold(doc, dataset.MoviePath)
	if err != nil {
		t.Fatal(err)
	}
	m := eval.PairwiseMetrics(gold, all.Clusters["movie"])
	// The similarity itself should recover most planted duplicates.
	if m.Recall < 0.6 {
		t.Errorf("all-pairs recall = %v (%s)", m.Recall, m)
	}
}

func TestDESNMEliminatesExactDuplicates(t *testing.T) {
	// Build data with exact copies: duplicate with zero typos.
	xmlStr := `<movie_database><movies>` +
		`<movie x-gold="a"><title>Silent River</title></movie>` +
		`<movie x-gold="a"><title>Silent River</title></movie>` +
		`<movie x-gold="a"><title>Silent River</title></movie>` +
		`<movie x-gold="b"><title>Broken Storm</title></movie>` +
		`</movies></movie_database>`
	doc, err := xmltree.ParseString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &config.Config{Candidates: []config.Candidate{{
		Name:  "movie",
		XPath: "movie_database/movies/movie",
		Paths: []config.PathDef{{ID: 1, RelPath: "title/text()"}},
		OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K5"}}},
		},
		Threshold: 0.8,
		Window:    3,
	}}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := DESNM(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Eliminated != 2 {
		t.Errorf("eliminated = %d, want 2 exact copies", res.Eliminated)
	}
	cs := res.Clusters["movie"]
	dups := cs.NonSingletons()
	if len(dups) != 1 || len(dups[0].Members) != 3 {
		t.Errorf("clusters:\n%s", cs)
	}
	// Only the two representatives enter the window: 1 comparison.
	if res.Comparisons != 1 {
		t.Errorf("comparisons = %d, want 1", res.Comparisons)
	}
}

func TestDESNMMatchesSXNMOnCleanishData(t *testing.T) {
	doc := smallDirtyMovies(t, 100, 11)
	cfg := movieConfig(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sxnm, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := movieConfig(4)
	if err := cfg2.Validate(); err != nil {
		t.Fatal(err)
	}
	de, err := DESNM(doc, cfg2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gold, err := eval.BuildGold(doc, dataset.MoviePath)
	if err != nil {
		t.Fatal(err)
	}
	ms := eval.PairwiseMetrics(gold, sxnm.Clusters["movie"])
	md := eval.PairwiseMetrics(gold, de.Clusters["movie"])
	// DE-SNM should be at least as good on recall: eliminated rows are
	// exact duplicates that are always found, window contents only
	// improve.
	if md.Recall < ms.Recall-0.05 {
		t.Errorf("DE-SNM recall %v much worse than SXNM %v", md.Recall, ms.Recall)
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	cfg := movieConfig(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two batches of distinct movies with one duplicate pair spanning
	// batch 1 and batch 2.
	batch1 := `<movie_database><movies>
	  <movie x-gold="a" year="1999" length="100"><title>Silent River</title></movie>
	  <movie x-gold="b" year="1988" length="90"><title>Broken Storm</title></movie>
	</movies></movie_database>`
	batch2 := `<movie_database><movies>
	  <movie x-gold="a" year="1999" length="100"><title>Silent Rivers</title></movie>
	  <movie x-gold="c" year="2001" length="120"><title>Golden Dawn</title></movie>
	</movies></movie_database>`
	d1, err := xmltree.ParseString(batch1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := xmltree.ParseString(batch2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(d1); err != nil {
		t.Fatal(err)
	}
	if got := len(inc.Clusters("movie").NonSingletons()); got != 0 {
		t.Fatalf("batch 1 alone has no duplicates, got %d", got)
	}
	if err := inc.Add(d2); err != nil {
		t.Fatal(err)
	}
	cs := inc.Clusters("movie")
	if inc.Rows("movie") != 4 {
		t.Errorf("rows = %d, want 4", inc.Rows("movie"))
	}
	dups := cs.NonSingletons()
	if len(dups) != 1 || len(dups[0].Members) != 2 {
		t.Fatalf("cross-batch duplicate not found:\n%s", cs)
	}
}

func TestIncrementalSkipsOldOldPairs(t *testing.T) {
	cfg := movieConfig(10)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(doc); err != nil {
		t.Fatal(err)
	}
	afterFirst := inc.Comparisons
	// Adding an empty batch must cost zero comparisons.
	empty, err := xmltree.ParseString(`<movie_database><movies/></movie_database>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(empty); err != nil {
		t.Fatal(err)
	}
	if inc.Comparisons != afterFirst {
		t.Errorf("empty batch performed %d comparisons", inc.Comparisons-afterFirst)
	}
}

func TestIncrementalRejectsDescendantConfigs(t *testing.T) {
	cfg := config.DataSet2(4) // disc uses track-title descendants
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewIncremental(cfg); err == nil {
		t.Fatal("incremental must reject descendant-using configs")
	}
}

func TestIncrementalEmptyCandidate(t *testing.T) {
	cfg := movieConfig(3)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Clusters("movie").Len() != 0 {
		t.Error("empty incremental state should have no clusters")
	}
	if inc.Clusters("nosuch").Len() != 0 {
		t.Error("unknown candidate should yield empty cluster set")
	}
}
