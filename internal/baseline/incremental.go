package baseline

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// Incremental implements the incremental SNM variant the paper's
// Sec. 2.2 mentions for "large amounts of data as well as for
// repeatedly updated data": data arrives in batches; each batch's keys
// are generated, merged into the already-sorted key lists, and only
// the windows that contain at least one new row are compared. Cluster
// sets grow monotonically across batches.
//
// Descendant similarity is not available across batches (the cluster
// sets of nested candidates would need re-resolution against rows from
// earlier batches), so Incremental requires a configuration whose
// candidates do not use descendants; Add returns an error otherwise.
type Incremental struct {
	cfg  *config.Config
	rows map[string][]core.GKRow // per candidate, in arrival order
	uf   map[string]*cluster.UnionFind
	// nextEID offsets node IDs so documents from different batches
	// cannot collide.
	nextEID int
	// Comparisons counts similarity computations across all batches.
	Comparisons int
}

// NewIncremental creates an incremental deduplicator for the given
// validated configuration.
func NewIncremental(cfg *config.Config) (*Incremental, error) {
	for i := range cfg.Candidates {
		c := &cfg.Candidates[i]
		if c.DescendantsEnabled() && len(core.SchemaChildren(cfg, c)) > 0 {
			return nil, fmt.Errorf("baseline: incremental SNM does not support descendant similarity (candidate %q); set UseDescendants=false", c.Name)
		}
	}
	return &Incremental{
		cfg:  cfg,
		rows: make(map[string][]core.GKRow),
		uf:   make(map[string]*cluster.UnionFind),
	}, nil
}

// Add merges a new batch into the deduplicated state. Element IDs in
// the returned cluster sets are batch-offset node IDs; use Lookup to
// translate.
func (inc *Incremental) Add(doc *xmltree.Document) error {
	kg, err := core.GenerateKeys(doc, inc.cfg)
	if err != nil {
		return err
	}
	offset := inc.nextEID
	maxID := 0
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.ID > maxID {
			maxID = n.ID
		}
		return true
	})
	inc.nextEID += maxID + 1

	for _, cand := range core.ProcessingOrder(inc.cfg) {
		t := kg.Tables[cand.Name]
		uf := inc.uf[cand.Name]
		if uf == nil {
			uf = cluster.NewUnionFind()
			inc.uf[cand.Name] = uf
		}
		newRows := make([]core.GKRow, len(t.Rows))
		copy(newRows, t.Rows)
		for i := range newRows {
			newRows[i].EID += offset
			uf.Add(newRows[i].EID)
		}

		old := inc.rows[cand.Name]
		merged := append(append([]core.GKRow{}, old...), newRows...)
		isNew := func(eid int) bool { return eid >= offset }

		w := cand.Window
		seen := make(map[[2]int]struct{})
		for pass := range cand.CompiledKeys() {
			k := pass
			order := make([]int, len(merged))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool {
				ra, rb := &merged[order[a]], &merged[order[b]]
				if ra.Keys[k] != rb.Keys[k] {
					return ra.Keys[k] < rb.Keys[k]
				}
				return ra.EID < rb.EID
			})
			for i := 1; i < len(order); i++ {
				lo := i - (w - 1)
				if lo < 0 {
					lo = 0
				}
				for j := lo; j < i; j++ {
					a, b := &merged[order[j]], &merged[order[i]]
					// Only windows touching a new row need work; pairs
					// of two old rows were compared in earlier batches.
					if !isNew(a.EID) && !isNew(b.EID) {
						continue
					}
					pk := [2]int{minInt(a.EID, b.EID), maxInt(a.EID, b.EID)}
					if _, done := seen[pk]; done {
						continue
					}
					seen[pk] = struct{}{}
					if uf.Same(a.EID, b.EID) {
						continue
					}
					inc.Comparisons++
					_, _, _, dup, err := t.ComparePair(a, b, false)
					if err != nil {
						return err
					}
					if dup {
						uf.Union(a.EID, b.EID)
					}
				}
			}
		}
		inc.rows[cand.Name] = merged
	}
	return nil
}

// Clusters materializes the current cluster set for a candidate.
func (inc *Incremental) Clusters(candidate string) *cluster.ClusterSet {
	uf, ok := inc.uf[candidate]
	if !ok {
		return cluster.Build(cluster.NewUnionFind())
	}
	return cluster.Build(uf)
}

// Rows returns the number of accumulated rows for a candidate.
func (inc *Incremental) Rows(candidate string) int {
	return len(inc.rows[candidate])
}
