// Package baseline implements the comparison methods SXNM is measured
// against or extended with:
//
//   - AllPairs — exhaustive nested-loop comparison with SXNM's own
//     similarity measure. The paper notes that "the precision for
//     large window sizes converges to the precision the similarity
//     obtains when comparing all pairs"; this baseline produces that
//     reference value.
//   - DESNM — the Duplicate Elimination SNM of Hernández's thesis
//     ([19], named as future work in Sec. 5): exact-key duplicates are
//     eliminated before windowing, reducing comparisons.
//   - Incremental — the incremental SNM variant mentioned in Sec. 2.2
//     for "repeatedly updated data": new batches are merged into the
//     already-deduplicated sorted key lists, and only windows around
//     insertions are compared.
package baseline

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// AllPairsResult mirrors core.Result for the exhaustive baseline.
type AllPairsResult struct {
	Clusters    map[string]*cluster.ClusterSet
	Comparisons int
	Duration    time.Duration
}

// AllPairs runs bottom-up duplicate detection comparing every pair of
// every candidate — no keys, no windows. Complexity is O(n²) per
// candidate; it exists to provide the quality ceiling that SXNM's
// precision converges to with growing windows.
func AllPairs(doc *xmltree.Document, cfg *config.Config, opts core.Options) (*AllPairsResult, error) {
	start := time.Now()
	kg, err := core.GenerateKeys(doc, cfg)
	if err != nil {
		return nil, err
	}
	res := &AllPairsResult{Clusters: make(map[string]*cluster.ClusterSet, len(cfg.Candidates))}
	for _, group := range core.DetectionOrder(kg, cfg) {
		for _, cand := range group {
			t := kg.Tables[cand.Name]
			useDesc := cand.DescendantsEnabled() && !opts.DisableDescendants
			if useDesc {
				core.ResolveDescendantClusters(t, res.Clusters)
			}
			uf := cluster.NewUnionFind()
			for i := range t.Rows {
				uf.Add(t.Rows[i].EID)
			}
			for i := 0; i < len(t.Rows); i++ {
				for j := i + 1; j < len(t.Rows); j++ {
					res.Comparisons++
					_, _, _, dup, err := t.ComparePair(&t.Rows[i], &t.Rows[j], useDesc)
					if err != nil {
						return nil, err
					}
					if dup {
						uf.Union(t.Rows[i].EID, t.Rows[j].EID)
					}
				}
			}
			res.Clusters[cand.Name] = cluster.Build(uf)
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}
