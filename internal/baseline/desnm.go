package baseline

import (
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// DESNMResult reports the outcome of a DE-SNM run.
type DESNMResult struct {
	Clusters map[string]*cluster.ClusterSet
	// Comparisons is the number of window similarity computations.
	Comparisons int
	// Eliminated counts rows removed by the duplicate elimination
	// pre-pass (they re-enter their representative's cluster at the
	// end).
	Eliminated int
	Duration   time.Duration
}

// DESNM runs the Duplicate Elimination Sorted Neighborhood Method: for
// each candidate, rows whose first key and object description values
// are byte-identical are collapsed to a single representative before
// the sliding-window passes; afterwards the eliminated rows join their
// representative's cluster. On data with many exact duplicates this
// shrinks the windowed table substantially.
func DESNM(doc *xmltree.Document, cfg *config.Config, opts core.Options) (*DESNMResult, error) {
	start := time.Now()
	kg, err := core.GenerateKeys(doc, cfg)
	if err != nil {
		return nil, err
	}
	res := &DESNMResult{Clusters: make(map[string]*cluster.ClusterSet, len(cfg.Candidates))}
	for _, group := range core.DetectionOrder(kg, cfg) {
		for _, cand := range group {
			t := kg.Tables[cand.Name]
			useDesc := cand.DescendantsEnabled() && !opts.DisableDescendants
			if useDesc {
				core.ResolveDescendantClusters(t, res.Clusters)
			}

			// Duplicate elimination: group rows by exact (key1, OD) value.
			groups := make(map[string][]int, len(t.Rows)) // signature -> row indices
			sigs := make([]string, 0, len(t.Rows))
			for i := range t.Rows {
				sig := exactSignature(&t.Rows[i])
				if _, ok := groups[sig]; !ok {
					sigs = append(sigs, sig)
				}
				groups[sig] = append(groups[sig], i)
			}
			sort.Strings(sigs)

			uf := cluster.NewUnionFind()
			for i := range t.Rows {
				uf.Add(t.Rows[i].EID)
			}
			reps := make([]int, 0, len(sigs)) // representative row indices
			for _, sig := range sigs {
				idxs := groups[sig]
				rep := idxs[0]
				reps = append(reps, rep)
				for _, other := range idxs[1:] {
					uf.Union(t.Rows[rep].EID, t.Rows[other].EID)
					res.Eliminated++
				}
			}

			// Multi-pass sliding window over representatives only.
			keys := cand.CompiledKeys()
			w := cand.Window
			seen := make(map[[2]int]struct{})
			order := make([]int, len(reps))
			for pass := range keys {
				copy(order, reps)
				k := pass
				sort.SliceStable(order, func(a, b int) bool {
					ra, rb := &t.Rows[order[a]], &t.Rows[order[b]]
					if ra.Keys[k] != rb.Keys[k] {
						return ra.Keys[k] < rb.Keys[k]
					}
					return ra.EID < rb.EID
				})
				for i := 1; i < len(order); i++ {
					lo := i - (w - 1)
					if lo < 0 {
						lo = 0
					}
					for j := lo; j < i; j++ {
						a, b := &t.Rows[order[j]], &t.Rows[order[i]]
						pk := [2]int{minInt(a.EID, b.EID), maxInt(a.EID, b.EID)}
						if _, dup := seen[pk]; dup {
							continue
						}
						seen[pk] = struct{}{}
						res.Comparisons++
						_, _, _, isDup, err := t.ComparePair(a, b, useDesc)
						if err != nil {
							return nil, err
						}
						if isDup {
							uf.Union(a.EID, b.EID)
						}
					}
				}
			}
			res.Clusters[cand.Name] = cluster.Build(uf)
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// exactSignature builds the elimination key: the first generated key
// plus all OD values, NUL-separated.
func exactSignature(r *core.GKRow) string {
	sig := ""
	if len(r.Keys) > 0 {
		sig = r.Keys[0]
	}
	for _, vals := range r.OD {
		sig += "\x00"
		for _, v := range vals {
			sig += "\x01" + v
		}
	}
	return sig
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
