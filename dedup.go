package sxnm

import (
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// Deduplicate produces a de-duplicated copy of the document from a
// detection result: within every duplicate cluster a prime
// representative is selected and the other members are removed — the
// "typical approach" the paper describes at the end of Sec. 3.4.
//
// Candidates are processed top-down so that removing a duplicate
// ancestor also removes its descendants before their own clusters are
// considered; a cluster whose earlier members were removed that way
// keeps its first surviving member.
//
// The representative of a cluster is its member with the longest total
// text (ties broken by document order), a simple data-fusion heuristic
// that prefers the most complete record.
func Deduplicate(doc *Document, res *Result) *Document {
	out := xmltree.NewDocument(doc.Root.Clone())
	// Clone preserves node IDs, so result EIDs address the copy.
	index := out.IndexByID()

	// Top-down: reverse of the engine's bottom-up order.
	names := make([]string, 0, len(res.Clusters))
	for name := range res.Clusters {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		di := candidateDepth(res, names[i])
		dj := candidateDepth(res, names[j])
		if di != dj {
			return di < dj
		}
		return names[i] < names[j]
	})

	for _, name := range names {
		cs := res.Clusters[name]
		for _, c := range cs.NonSingletons() {
			var alive []*xmltree.Node
			for _, eid := range c.Members {
				if n := index[eid]; n != nil && stillAttached(n, out.Root) {
					alive = append(alive, n)
				}
			}
			if len(alive) <= 1 {
				continue
			}
			rep := chooseRepresentative(alive)
			for _, n := range alive {
				if n != rep && n.Parent != nil {
					n.Parent.RemoveChild(n)
				}
			}
		}
	}
	out.Renumber()
	return out
}

// candidateDepth orders candidates top-down by the depth of their
// configured path (number of steps).
func candidateDepth(res *Result, name string) int {
	t, ok := res.Tables[name]
	if !ok || t.Candidate == nil {
		return 0
	}
	return strings.Count(t.Candidate.XPath, "/")
}

// stillAttached reports whether n is still reachable from root (it may
// have been removed together with a duplicate ancestor).
func stillAttached(n, root *xmltree.Node) bool {
	for e := n; e != nil; e = e.Parent {
		if e == root {
			return true
		}
	}
	return false
}

// chooseRepresentative prefers the member with the most descendant
// text; ties go to the earliest in document order.
func chooseRepresentative(members []*xmltree.Node) *xmltree.Node {
	best := members[0]
	bestLen := len(best.DeepText())
	for _, n := range members[1:] {
		if l := len(n.DeepText()); l > bestLen || (l == bestLen && n.ID < best.ID) {
			best, bestLen = n, l
		}
	}
	return best
}

// DuplicateSummary condenses a result into printable per-candidate
// lines, e.g. for CLI output.
type DuplicateSummary struct {
	Candidate    string
	Elements     int
	Clusters     int
	NonSingleton int
	Pairs        int
}

// Summarize extracts per-candidate duplicate summaries, sorted by
// candidate name.
func Summarize(res *Result) []DuplicateSummary {
	out := make([]DuplicateSummary, 0, len(res.Clusters))
	for name, cs := range res.Clusters {
		out = append(out, DuplicateSummary{
			Candidate:    name,
			Elements:     cs.Elements(),
			Clusters:     cs.Len(),
			NonSingleton: len(cs.NonSingletons()),
			Pairs:        len(cs.DuplicatePairs()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Candidate < out[j].Candidate })
	return out
}
