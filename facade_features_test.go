package sxnm

import (
	"strings"
	"testing"
)

// Tests for the facade-level wiring of the Sec. 5 extensions: config-
// declared equational rules, the comparison filter, and parallel runs.

const ruleConfigXML = `
<sxnm-config>
  <candidate name="movie" xpath="movie_database/movies/movie" window="5" threshold="0.95">
    <path id="1" relPath="title/text()"/>
    <path id="2" relPath="@year"/>
    <od pid="1" relevance="0.5"/>
    <od pid="2" relevance="0.5" sim="year"/>
    <key name="title"><part pid="1" order="1" pattern="K1-K4"/></key>
    <rule>sim(1) &gt;= 0.9</rule>
  </candidate>
</sxnm-config>`

const ruleDataXML = `
<movie_database>
  <movies>
    <movie year="1999"><title>Silent River</title></movie>
    <movie year="1901"><title>Silent Rivr</title></movie>
    <movie year="1999"><title>Broken Storm</title></movie>
  </movies>
</movie_database>`

func TestConfigDeclaredRule(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(ruleConfigXML))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Candidate("movie").RuleExpr != "sim(1) >= 0.9" {
		t.Fatalf("RuleExpr = %q", cfg.Candidate("movie").RuleExpr)
	}
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.RunReader(strings.NewReader(ruleDataXML))
	if err != nil {
		t.Fatal(err)
	}
	// The built-in combined threshold 0.95 would reject (years are far
	// apart); the declared rule accepts on the title field alone.
	dups := res.Clusters["movie"].NonSingletons()
	if len(dups) != 1 || len(dups[0].Members) != 2 {
		t.Fatalf("declared rule not applied:\n%s", res.Clusters["movie"])
	}
}

func TestConfigDeclaredRuleSyntaxError(t *testing.T) {
	bad := strings.Replace(ruleConfigXML, "sim(1) &gt;= 0.9", "sim(", 1)
	cfg, err := LoadConfig(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err) // config parsing stores the expression verbatim
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("New should surface rule syntax errors")
	}
}

func TestConfigDeclaredRuleRoundTrip(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(ruleConfigXML))
	if err != nil {
		t.Fatal(err)
	}
	out := cfg.Document().String()
	again, err := LoadConfig(strings.NewReader(out))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if again.Candidate("movie").RuleExpr != "sim(1) >= 0.9" {
		t.Errorf("rule lost in round trip: %q", again.Candidate("movie").RuleExpr)
	}
}

func TestUserFieldRuleBeatsConfigRule(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(ruleConfigXML))
	if err != nil {
		t.Fatal(err)
	}
	// A user-provided FieldRule that rejects everything must override
	// the config-declared rule.
	det, err := NewWithOptions(cfg, Options{
		FieldRule: func(_ *Candidate, _ []float64, _ float64, _ bool) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.RunReader(strings.NewReader(ruleDataXML))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Clusters["movie"].NonSingletons()); got != 0 {
		t.Fatalf("user rule should win, found %d groups", got)
	}
}

func TestFilterOptionThroughFacade(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(demoConfig))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewWithOptions(cfg, Options{UseFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.RunReader(strings.NewReader(demoXML))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters["movie"].NonSingletons()) != 1 {
		t.Error("filter run changed detection outcome")
	}
}

func TestParallelOptionThroughFacade(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(demoConfig))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewWithOptions(cfg, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.RunReader(strings.NewReader(demoXML))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters["movie"].NonSingletons()) != 1 {
		t.Error("parallel run changed detection outcome")
	}
}

func TestCompileRuleFacade(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(ruleConfigXML))
	if err != nil {
		t.Fatal(err)
	}
	r, err := CompileRule("od >= 0.5 and present(1)", cfg.Candidate("movie"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Evaluate([]float64{1, 1}, 0.9, 0, false) {
		t.Error("rule evaluation broken")
	}
	if _, err := CompileRule("sim(42) > 0", cfg.Candidate("movie")); err == nil {
		t.Error("unknown path id should fail")
	}
}

func TestRunStreamFacade(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(demoConfig))
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamRes, err := det.RunStream(strings.NewReader(demoXML))
	if err != nil {
		t.Fatal(err)
	}
	domRes, err := det.RunReader(strings.NewReader(demoXML))
	if err != nil {
		t.Fatal(err)
	}
	for name := range domRes.Clusters {
		if streamRes.Clusters[name].String() != domRes.Clusters[name].String() {
			t.Errorf("%s: streaming clusters differ", name)
		}
	}
	if _, err := det.RunStreamFile("/nonexistent.xml"); err == nil {
		t.Error("absent file should fail")
	}
}

func TestGKPersistenceFacade(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(demoConfig))
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseXMLString(demoXML)
	if err != nil {
		t.Fatal(err)
	}
	var dump strings.Builder
	if err := det.WriteGK(doc, &dump); err != nil {
		t.Fatal(err)
	}
	fromGK, err := det.RunFromGK(strings.NewReader(dump.String()))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	for name := range direct.Clusters {
		if fromGK.Clusters[name].String() != direct.Clusters[name].String() {
			t.Errorf("%s: GK-loaded clusters differ", name)
		}
	}
	if _, err := det.RunFromGK(strings.NewReader("garbage\tline")); err == nil {
		t.Error("bad GK dump should fail")
	}
}
