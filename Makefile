# Verification pipeline for the SXNM reproduction. `make check` is the
# full gate: vet, build, race-enabled tests, a one-iteration
# trace-overhead benchmark (compile + smoke, not a measurement), and a
# short fuzz pass over every parser in the tree.

GO       ?= go
FUZZTIME ?= 10s
BENCHN   ?= 1000

.PHONY: check vet build test smallspill smallshard fuzz-short bench bench-overhead bench-check bench-baseline daemon-smoke daemon-multi daemon-obs

check: vet build test smallspill smallshard bench-overhead fuzz-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Run the whole suite with every table forced through the external-sort
# spill path (spill threshold 1): any behavioural difference between the
# in-memory and spilled engines fails an existing test.
smallspill:
	$(GO) test -race -tags=smallspill ./...

# Run the whole suite with every pass swept through the sharded engine
# at the minimum legal shard size (one owned row per shard): any
# behavioural difference between the sharded and sequential sweeps
# fails an existing test.
smallshard:
	$(GO) test -race -tags=smallshard ./...

# Regenerate the committed BENCH_sxnm.json baseline: a deterministic
# movies corpus (seed 1, $(BENCHN) objects) run end to end with the
# observer attached; the run report IS the baseline. Compare a fresh
# report against the committed file to spot perf or accuracy drift.
# The report is written to a scratch path and MERGED into the baseline
# so the committed bench_ns_per_op map (owned by bench-baseline)
# survives the refresh.
bench:
	mkdir -p /tmp/sxnm-bench
	$(GO) run ./cmd/xmlgen -kind movies -n $(BENCHN) -seed 1 \
		-out /tmp/sxnm-bench/movies.xml -config-out /tmp/sxnm-bench/config.xml
	$(GO) run ./cmd/sxnm -config /tmp/sxnm-bench/config.xml \
		-input /tmp/sxnm-bench/movies.xml -stats -report /tmp/sxnm-bench/report.json
	SXNM_BENCH_MERGE=/tmp/sxnm-bench/report.json \
		$(GO) test -run 'TestBenchGuard$$' -count=1 .

# Guard the window-sweep hot path against perf regressions: re-measure
# the windowSweepCases benches and fail on >15% ns/op drift from the
# bench_ns_per_op baselines committed in BENCH_sxnm.json (plus a ≥1.5×
# 4-worker speedup bar on machines with ≥4 CPUs). bench-baseline
# re-records after an intentional perf change.
bench-check:
	SXNM_BENCH_CHECK=1 $(GO) test -run 'TestBenchGuard$$' -count=1 -v .

bench-baseline:
	SXNM_BENCH_RECORD=1 $(GO) test -run 'TestBenchGuard$$' -count=1 .

# One iteration of the no-observer / metrics-only / full-trace
# benchmark trio. Proves the instrumented paths still run; use
# `go test -bench ObserverOverhead -benchtime 2s ./internal/core` for
# real overhead numbers.
bench-overhead:
	$(GO) test -run '^$$' -bench BenchmarkObserverOverhead -benchtime 1x ./internal/core

# Each fuzz target runs for $(FUZZTIME) with the unit tests filtered
# out (-run '^$$' keeps the corpus-only seeds from re-running twice).
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmltree
	$(GO) test -run '^$$' -fuzz FuzzCompilePattern -fuzztime $(FUZZTIME) ./internal/keygen
	$(GO) test -run '^$$' -fuzz FuzzCompileRule -fuzztime $(FUZZTIME) ./internal/rules
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/xpath
	$(GO) test -run '^$$' -fuzz 'FuzzReadGK$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzGKEscape$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzParseManifest -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz FuzzPairKey -fuzztime $(FUZZTIME) ./internal/similarity
	$(GO) test -run '^$$' -fuzz FuzzBoundSoundness -fuzztime $(FUZZTIME) ./internal/similarity
	$(GO) test -run '^$$' -fuzz FuzzMergeInvariants -fuzztime $(FUZZTIME) ./internal/extsort
	$(GO) test -run '^$$' -fuzz FuzzSpillRowCodec -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzShardPlan$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzJobConfigDecode -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzLeaseDecode -fuzztime $(FUZZTIME) ./internal/server

# The daemon lifecycle end to end: start sxnmd in-process, submit over
# HTTP, SIGTERM it mid-run, assert a clean drain, restart over the same
# spool, and assert the job resumes and finishes.
daemon-smoke:
	$(GO) test -race -run 'TestDaemonSmoke' -count=1 -v ./cmd/sxnmd

# The observability surface under the race detector: per-job event
# journal (roundtrip, torn-tail repair, retention, kill-at-every-step),
# SSE replay/tail/resume, the /v1/fleet lease view, latency histogram
# semantics, and the Prometheus exposition linter over both exporters.
daemon-obs:
	$(GO) test -race -count=1 -v \
		-run 'TestJournal|TestReadJournal|TestEvent|TestFleet|TestDaemonMetricsLint' ./internal/server
	$(GO) test -race -count=1 -v \
		-run 'TestHist|TestPhase|TestSampleHeap|TestLint|TestRotating' ./internal/obs

# The multi-daemon differential, exhaustive: two daemons share a spool;
# daemon A is killed at EVERY durable I/O step (admission, lease claim,
# heartbeat, checkpoint, outcome) and also live-stalled mid-run; daemon
# B must take its jobs over and finish byte-identically to an
# uninterrupted run, while the fenced zombie writes nothing.
daemon-multi:
	DAEMON_MULTI_EXHAUSTIVE=1 $(GO) test -race -count=1 -v \
		-run 'TestTwoDaemonTakeoverDifferential|TestTakeoverKilledAtEveryStep' ./internal/server
