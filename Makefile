# Verification pipeline for the SXNM reproduction. `make check` is the
# full gate: vet, build, race-enabled tests, and a short fuzz pass over
# every parser in the tree.

GO       ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test fuzz-short

check: vet build test fuzz-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Each fuzz target runs for $(FUZZTIME) with the unit tests filtered
# out (-run '^$$' keeps the corpus-only seeds from re-running twice).
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmltree
	$(GO) test -run '^$$' -fuzz FuzzCompilePattern -fuzztime $(FUZZTIME) ./internal/keygen
	$(GO) test -run '^$$' -fuzz FuzzCompileRule -fuzztime $(FUZZTIME) ./internal/rules
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/xpath
	$(GO) test -run '^$$' -fuzz 'FuzzReadGK$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzGKEscape$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzParseManifest -fuzztime $(FUZZTIME) ./internal/checkpoint
