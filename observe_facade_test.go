package sxnm

// Facade-level observability tests: an observed run emits a parseable
// trace, a report whose counts match Result.Stats, checkpoint-write
// accounting, and resume provenance distinguishing recovered work.

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func observedDetector(t *testing.T, opts Options) (*Detector, *Document, *Collector, *TraceRing, *TraceJSONL, *bytes.Buffer) {
	t.Helper()
	cfg, doc := checkpointCorpus(t)
	ring := NewTraceRing(1 << 14)
	col := NewCollector()
	var trace bytes.Buffer
	jl := NewTraceJSONL(&trace)
	opts.Observer = NewObserver(ring, col, jl)
	det, err := NewWithOptions(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return det, doc, col, ring, jl, &trace
}

func TestFacadeObservedRun(t *testing.T) {
	det, doc, col, _, jl, trace := observedDetector(t, Options{UseFilter: true})
	var xml bytes.Buffer
	if err := doc.Write(&xml, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := det.RunReader(bytes.NewReader(xml.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	m := det.opts.Observer.Metrics()
	rep := col.Report(m)
	if rep.Totals.Comparisons != int64(res.Stats.Comparisons) ||
		rep.Totals.FilteredOut != int64(res.Stats.FilteredOut) ||
		rep.Totals.DuplicatePairs != int64(res.Stats.DuplicatePairs) {
		t.Errorf("report totals %+v diverge from stats (%d/%d/%d)", rep.Totals,
			res.Stats.Comparisons, res.Stats.FilteredOut, res.Stats.DuplicatePairs)
	}
	if rep.ParseMS <= 0 {
		t.Error("parse phase not traced through RunReader")
	}

	// The derived rates share the attempted-comparison denominator —
	// Comparisons + FilteredOut, the pairs the sweep enumerated
	// (DESIGN.md §11). Pin both the report's and the metrics
	// snapshot's filter_hit_rate against the same formula over
	// Result.Stats, and comparisons_per_sec against attempted/elapsed.
	if res.Stats.FilteredOut == 0 {
		t.Error("filters-on observed run skipped nothing: Stats.FilteredOut = 0")
	}
	snap := m.Snapshot()
	if attempted := res.Stats.Comparisons + res.Stats.FilteredOut; attempted > 0 {
		want := float64(res.Stats.FilteredOut) / float64(attempted)
		if rep.FilterHitRate != want {
			t.Errorf("report filter_hit_rate = %v, want %v from Stats", rep.FilterHitRate, want)
		}
		if snap.FilterHitRate != want {
			t.Errorf("metrics filter_hit_rate = %v, want %v from Stats", snap.FilterHitRate, want)
		}
	}
	if snap.ElapsedSeconds > 0 {
		if want := float64(snap.Comparisons+snap.FilteredOut) / snap.ElapsedSeconds; snap.ComparisonsPerSec != want {
			t.Errorf("comparisons_per_sec = %v, want attempted/elapsed = %v", snap.ComparisonsPerSec, want)
		}
	}

	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseTrace(trace)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, r := range recs {
		names[r.Name] = true
	}
	for _, want := range []string{"parse", "keygen", "detect", "candidate", "pass", "sliding-window", "transitive-closure"} {
		if !names[want] {
			t.Errorf("trace missing %q spans", want)
		}
	}

	var prom bytes.Buffer
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "sxnm_comparisons_total") {
		t.Error("prometheus dump missing counters")
	}
}

func TestFacadeStreamRunTraced(t *testing.T) {
	det, doc, col, ring, _, _ := observedDetector(t, Options{})
	var xml bytes.Buffer
	if err := doc.Write(&xml, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := det.RunStream(bytes.NewReader(xml.Bytes())); err != nil {
		t.Fatal(err)
	}
	var kgStreamed bool
	for _, r := range ring.Records() {
		if r.Name == "keygen" && r.AttrBool("stream") {
			kgStreamed = true
		}
	}
	if !kgStreamed {
		t.Error("streaming key generation span missing stream=true")
	}
	if rep := col.Report(nil); rep.KeyGenMS <= 0 {
		t.Error("keygen duration not collected from stream run")
	}
}

func TestFacadeCheckpointedRunReportsResume(t *testing.T) {
	cfg, doc := checkpointCorpus(t)
	full, err := func() (*Result, error) {
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return det.Run(doc)
	}()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	limited, err := NewWithOptions(cfg, Options{Limits: Limits{MaxComparisons: full.Stats.Comparisons / 3, CheckEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := limited.RunCheckpointed(doc, dir); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want interruption, got %v", err)
	}

	// Resume with an observer: the report must show recovered work and
	// checkpoint writes.
	ring := NewTraceRing(1 << 14)
	col := NewCollector()
	ob := NewObserver(ring, col)
	det, err := NewWithOptions(cfg, Options{Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.RunCheckpointed(doc, dir)
	if err != nil {
		t.Fatal(err)
	}
	clustersEqual(t, res, full)

	m := ob.Metrics()
	rep := col.Report(m)
	if rep.Checkpoint == nil || rep.Checkpoint.Writes == 0 || rep.Checkpoint.Bytes == 0 {
		t.Errorf("checkpoint accounting missing: %+v", rep.Checkpoint)
	}
	if rep.Resume == nil {
		t.Fatal("resumed run's report carries no resume provenance")
	}
	if m.ResumedCandidates.Load() == 0 && m.ResumedPairs.Load() == 0 && len(rep.Resume.NextPass) == 0 {
		t.Errorf("resume provenance empty: %+v", rep.Resume)
	}
	// Totals still match the (partial-work) stats of the resumed run.
	if rep.Totals.Comparisons != int64(res.Stats.Comparisons) {
		t.Errorf("report comparisons %d vs stats %d", rep.Totals.Comparisons, res.Stats.Comparisons)
	}
}

func TestFingerprintExports(t *testing.T) {
	cfg, doc := checkpointCorpus(t)
	cfgFP, err := ConfigFingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docFP, err := DocumentFingerprint(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgFP) != 64 || len(docFP) != 64 || cfgFP == docFP {
		t.Errorf("fingerprints = %q / %q", cfgFP, docFP)
	}
}
