// Command sxnm-tune calibrates a candidate's thresholds and window on
// a labelled sample (elements carrying x-gold identities), following
// the paper's Sec. 3.4 advice to determine parameters on a small
// sample, and optionally writes the tuned configuration back out.
//
// Usage:
//
//	sxnm-tune -config cfg.xml -sample sample.xml -candidate movie \
//	          [-windows 2,4,8] [-thresholds 0.6,0.7,0.8] [-out tuned.xml]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sxnm "repro"
	"repro/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sxnm-tune:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sxnm-tune", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "SXNM configuration XML (required)")
		samplePath = fs.String("sample", "", "labelled sample document (required)")
		candidate  = fs.String("candidate", "", "candidate to tune (required)")
		thresholds = fs.String("thresholds", "", "comma-separated thresholds (default 0.50..0.95)")
		windows    = fs.String("windows", "", "comma-separated window sizes (default: configured window)")
		descs      = fs.String("desc-thresholds", "", "comma-separated descendant thresholds (either/both rules)")
		outPath    = fs.String("out", "", "write the tuned configuration here")
		beta       = fs.Float64("beta", 1, "F_beta weighting (2 favours recall, 0.5 precision)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || *samplePath == "" || *candidate == "" {
		fs.Usage()
		return fmt.Errorf("-config, -sample, and -candidate are required")
	}

	cfg, err := sxnm.LoadConfigFile(*configPath)
	if err != nil {
		return err
	}
	sample, err := sxnm.ParseXMLFile(*samplePath)
	if err != nil {
		return err
	}
	opts := sxnm.TuneOptions{Candidate: *candidate, Beta: *beta}
	if opts.Thresholds, err = parseFloats(*thresholds); err != nil {
		return fmt.Errorf("-thresholds: %w", err)
	}
	if opts.DescThresholds, err = parseFloats(*descs); err != nil {
		return fmt.Errorf("-desc-thresholds: %w", err)
	}
	if opts.Windows, err = parseInts(*windows); err != nil {
		return fmt.Errorf("-windows: %w", err)
	}

	res, err := sxnm.Tune(sample, cfg, opts)
	if err != nil {
		return err
	}
	fmt.Println("threshold  descThr  window  precision  recall  f-measure  score")
	for _, s := range res.Settings {
		marker := " "
		if s == res.Best {
			marker = "*"
		}
		fmt.Printf("%s %.2f      %.2f     %-6d  %.3f      %.3f   %.3f      %.3f\n",
			marker, s.Threshold, s.DescThreshold, s.Window,
			s.Metrics.Precision, s.Metrics.Recall, s.Metrics.F1, s.Score)
	}
	fmt.Printf("\nbest: threshold %.2f, descendants %.2f, window %d (%s)\n",
		res.Best.Threshold, res.Best.DescThreshold, res.Best.Window, res.Best.Metrics)

	if *outPath != "" {
		if err := sxnm.ApplyTuned(cfg, *candidate, res.Best); err != nil {
			return err
		}
		if err := cfg.Document().WriteFile(*outPath, xmltree.WriteOptions{Indent: "  ", Header: true}); err != nil {
			return err
		}
		fmt.Printf("wrote tuned configuration to %s\n", *outPath)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
