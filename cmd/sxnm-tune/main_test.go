package main

import (
	"os"
	"path/filepath"
	"testing"

	sxnm "repro"
)

const tuneConfig = `
<sxnm-config>
  <candidate name="movie" xpath="movie_database/movies/movie" window="4" threshold="0.8">
    <path id="1" relPath="title/text()"/>
    <od pid="1" relevance="1"/>
    <key><part pid="1" order="1" pattern="K1-K5"/></key>
  </candidate>
</sxnm-config>`

const tuneSample = `
<movie_database>
  <movies>
    <movie x-gold="a"><title>Silent River</title></movie>
    <movie x-gold="a"><title>Silnt River</title></movie>
    <movie x-gold="b"><title>Broken Storm</title></movie>
    <movie x-gold="b"><title>Broken Strom</title></movie>
    <movie x-gold="c"><title>Golden Harbor</title></movie>
  </movies>
</movie_database>`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTuneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", tuneConfig)
	sample := write(t, dir, "sample.xml", tuneSample)
	out := filepath.Join(dir, "tuned.xml")
	if err := run([]string{
		"-config", cfg, "-sample", sample, "-candidate", "movie",
		"-thresholds", "0.6,0.8,0.95", "-windows", "3,6", "-out", out,
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	tuned, err := sxnm.LoadConfigFile(out)
	if err != nil {
		t.Fatalf("tuned config invalid: %v", err)
	}
	c := tuned.Candidate("movie")
	if c.Threshold != 0.6 && c.Threshold != 0.8 {
		t.Errorf("tuned threshold = %v, want a sweep value below 0.95", c.Threshold)
	}
}

func TestRunTuneMissingFlags(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags should fail")
	}
	if err := run([]string{"-config", "x", "-sample", "y"}); err == nil {
		t.Error("missing -candidate should fail")
	}
}

func TestRunTuneBadValues(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", tuneConfig)
	sample := write(t, dir, "sample.xml", tuneSample)
	if err := run([]string{"-config", cfg, "-sample", sample, "-candidate", "movie",
		"-thresholds", "abc"}); err == nil {
		t.Error("bad thresholds should fail")
	}
	if err := run([]string{"-config", cfg, "-sample", sample, "-candidate", "movie",
		"-windows", "x"}); err == nil {
		t.Error("bad windows should fail")
	}
	if err := run([]string{"-config", cfg, "-sample", sample, "-candidate", "nosuch"}); err == nil {
		t.Error("unknown candidate should fail")
	}
}

func TestParseHelpers(t *testing.T) {
	fs, err := parseFloats(" 0.5 , 0.75 ")
	if err != nil || len(fs) != 2 || fs[1] != 0.75 {
		t.Errorf("parseFloats = %v, %v", fs, err)
	}
	if out, err := parseFloats(""); err != nil || out != nil {
		t.Error("empty floats should be nil")
	}
	is, err := parseInts("2,4")
	if err != nil || len(is) != 2 || is[1] != 4 {
		t.Errorf("parseInts = %v, %v", is, err)
	}
	if out, err := parseInts("  "); err != nil || out != nil {
		t.Error("empty ints should be nil")
	}
}
