package main

import (
	"os"
	"path/filepath"
	"testing"

	sxnm "repro"
	"repro/internal/xmltree"
)

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind    string
		clean   bool
		variant string
		root    string
	}{
		{"movies", true, "", "movie_database"},
		{"movies", false, "", "movie_database"},
		{"cds", true, "", "cds"},
		{"cds", false, "", "cds"},
		{"freedb", false, "", "cds"},
		{"scale", false, "clean", "movie_database"},
		{"scale", false, "few", "movie_database"},
		{"scale", false, "many", "movie_database"},
	}
	for _, c := range cases {
		doc, err := generate(c.kind, 30, 1, c.clean, c.variant)
		if err != nil {
			t.Fatalf("generate(%s): %v", c.kind, err)
		}
		if doc.Root.Name != c.root {
			t.Errorf("generate(%s) root = %q, want %q", c.kind, doc.Root.Name, c.root)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("bogus", 10, 1, false, ""); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := generate("scale", 10, 1, false, "bogus"); err == nil {
		t.Error("unknown variant should fail")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.xml")
	if err := run([]string{"-kind", "movies", "-n", "20", "-seed", "3", "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	doc, err := xmltree.ParseFile(out)
	if err != nil {
		t.Fatalf("generated file does not parse: %v", err)
	}
	if len(doc.ElementsByPath("movie_database/movies/movie")) < 20 {
		t.Error("too few movies in output")
	}
}

func TestRunMissingOut(t *testing.T) {
	if err := run([]string{"-kind", "movies"}); err == nil {
		t.Error("missing -out should fail")
	}
}

func TestRunBadOutPath(t *testing.T) {
	if err := run([]string{"-kind", "movies", "-n", "5", "-out", "/nonexistent-dir/x.xml"}); err == nil {
		t.Error("unwritable path should fail")
	}
	_ = os.ErrNotExist
}

func TestRunWritesConfig(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "data.xml")
	cfgOut := filepath.Join(dir, "cfg.xml")
	if err := run([]string{"-kind", "cds", "-n", "10", "-out", out, "-config-out", cfgOut}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The emitted configuration must load, validate, and run against
	// the emitted data.
	cfg, err := sxnm.LoadConfigFile(cfgOut)
	if err != nil {
		t.Fatalf("emitted config invalid: %v", err)
	}
	det, err := sxnm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.RunFile(out); err != nil {
		t.Fatalf("emitted config failed on emitted data: %v", err)
	}
}

func TestMatchingConfigUnknown(t *testing.T) {
	if _, err := matchingConfig("bogus"); err == nil {
		t.Error("unknown kind should fail")
	}
}
