// Command xmlgen generates the paper's evaluation data sets to disk:
// clean and dirty artificial movie databases (ToXGene + Dirty XML Data
// Generator substitutes) and FreeDB-like CD corpora.
//
// Usage:
//
//	xmlgen -kind movies  -n 5000 -seed 1 -out movies.xml [-clean]
//	xmlgen -kind cds     -n 500  -seed 1 -out cds.xml    [-clean]
//	xmlgen -kind freedb  -n 10000 -seed 1 -out freedb.xml
//	xmlgen -kind scale -variant many -n 10000 -seed 1 -out scale.xml
//
// kinds: movies = Data set 1, cds = Data set 2, freedb = Data set 3,
// scale = Experiment set 2 variants (-variant clean|few|many). Every
// generated object carries a hidden x-gold attribute for evaluation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/gen/freedb"
	"repro/internal/gen/toxgene"
	"repro/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xmlgen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "movies", "movies | cds | freedb | scale")
		n       = fs.Int("n", 1000, "object count (clean objects before duplication)")
		seed    = fs.Int64("seed", 1, "generation seed")
		out     = fs.String("out", "", "output path (required)")
		clean   = fs.Bool("clean", false, "emit clean data without planted duplicates")
		variant = fs.String("variant", "few", "scale variant: clean | few | many")
		cfgOut  = fs.String("config-out", "", "also write the matching SXNM configuration here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}

	doc, err := generate(*kind, *n, *seed, *clean, *variant)
	if err != nil {
		return err
	}
	if err := doc.WriteFile(*out, xmltree.WriteOptions{Indent: "  ", Header: true}); err != nil {
		return err
	}
	st := doc.Stats()
	fmt.Printf("wrote %s: %d elements, %d text nodes, depth %d\n",
		*out, st.Elements, st.TextNodes, st.MaxDepth)
	if *cfgOut != "" {
		cfg, err := matchingConfig(*kind)
		if err != nil {
			return err
		}
		if err := cfg.Document().WriteFile(*cfgOut, xmltree.WriteOptions{Indent: "  ", Header: true}); err != nil {
			return err
		}
		fmt.Printf("wrote %s: configuration for kind %q\n", *cfgOut, *kind)
	}
	return nil
}

// matchingConfig returns the paper's Table 3 configuration that fits
// the generated data kind.
func matchingConfig(kind string) (*config.Config, error) {
	switch kind {
	case "movies":
		return config.DataSet1(0), nil
	case "cds":
		return config.DataSet2(0), nil
	case "freedb":
		return config.DataSet3(0), nil
	case "scale":
		return dataset.ScalabilityConfig(0), nil
	}
	return nil, fmt.Errorf("no configuration for kind %q", kind)
}

func generate(kind string, n int, seed int64, clean bool, variant string) (*xmltree.Document, error) {
	switch kind {
	case "movies":
		if clean {
			return toxgene.Movies(n, seed), nil
		}
		doc, dups, err := dataset.DataSet1(dataset.Movies1Options{Movies: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		fmt.Printf("planted %d movie duplicates\n", dups)
		return doc, nil
	case "cds":
		if clean {
			return freedb.Generate(freedb.CleanOptions(n, seed)), nil
		}
		return dataset.DataSet2(dataset.CDs2Options{Discs: n, Seed: seed})
	case "freedb":
		return dataset.DataSet3(n, seed), nil
	case "scale":
		v, err := parseVariant(variant)
		if err != nil {
			return nil, err
		}
		return dataset.ScalabilityData(n, v, seed)
	}
	return nil, fmt.Errorf("unknown kind %q (want movies, cds, freedb, or scale)", kind)
}

func parseVariant(s string) (dataset.ScaleVariant, error) {
	switch s {
	case "clean":
		return dataset.Clean, nil
	case "few":
		return dataset.FewDuplicates, nil
	case "many":
		return dataset.ManyDuplicates, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want clean, few, or many)", s)
}
