package main

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestRunTablesOnly(t *testing.T) {
	// Tables are cheap and exercise the full selection plumbing.
	if err := run([]string{"-run", "table1,table2,table3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunQuickFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	if err := run([]string{"-run", "fig6a", "-quick", "-seed", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownArtifactIsNoop(t *testing.T) {
	// Unknown artifact names simply select nothing.
	if err := run([]string{"-run", "bogus"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	if err := run([]string{"-run", "table2", "-format", "markdown"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-run", "table2", "-format", "bogus"}); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestRunInterruptedByLimits(t *testing.T) {
	// A one-comparison budget interrupts the first ablation variant;
	// the whole sweep aborts with the typed cause instead of emitting
	// partially measured tables.
	err := run([]string{"-run", "ablations", "-quick", "-max-comparisons", "1"})
	if !errors.Is(err, core.ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}

	err = run([]string{"-run", "fig6a", "-quick", "-timeout", "1ns"})
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
}
