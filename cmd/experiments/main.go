// Command experiments regenerates the paper's tables and figures as
// text tables.
//
// Usage:
//
//	experiments -run all                    # everything, paper-scale
//	experiments -run fig4a,fig4b            # selected artifacts
//	experiments -run fig5 -quick            # reduced sizes for a fast look
//
// Artifacts: table1 table2 table3 fig4a fig4b fig4c fig4d fig5a fig5b
// fig5c fig5d fig6a fig6b (fig4a/fig4b share one run, as do the fig5
// variants).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// writeMetrics dumps the sweep's final counters in Prometheus text
// format.
func writeMetrics(path string, m *obs.Metrics) error {
	m.SampleHeap()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if errors.Is(err, core.ErrCanceled) ||
			errors.Is(err, core.ErrDeadlineExceeded) ||
			errors.Is(err, core.ErrLimitExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runList = fs.String("run", "all", "comma-separated artifact list or 'all'")
		quick   = fs.Bool("quick", false, "reduced data sizes for a fast run")
		seed    = fs.Int64("seed", 1, "generation seed")
		format  = fs.String("format", "text", "output format: text | markdown")
		timeout = fs.Duration("timeout", 0, "abort the whole artifact run after this duration (0 = unlimited)")
		depth   = fs.Int("max-depth", 0, "per-run document depth ceiling (0 = unlimited)")
		nodes   = fs.Int("max-nodes", 0, "per-run document node ceiling (0 = unlimited)")
		cmps    = fs.Int("max-comparisons", 0, "per-run window comparison ceiling (0 = unlimited)")
		trace   = fs.String("trace", "", "stream a JSONL span trace of every detection run to this file")
		metrics = fs.String("metrics", "", "write the sweep's combined counters in Prometheus text format to this file")
		workers = fs.Int("pair-workers", 0, "window-sweep comparison goroutines per pass (-1 = all cores, 0 = sequential, the paper's timing setup); results are identical")
		shards  = fs.Int("shards", 0, "split each key pass into this many concurrently swept window ranges (-1 = one per core, 0 = off); results are identical")
		cache   = fs.Bool("sim-cache", false, "memoize similarity computations per candidate (identical results, less CPU)")
		spill   = fs.Int("spill-rows", 0, "external-sort candidates with more rows than this to disk (0 = always in memory); results are identical")
		spillD  = fs.String("spill-dir", "", "directory for spill run files (default: a temp dir per run)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// One envelope for every detection run: ^C and -timeout abort the
	// sweep with a typed cause (exit code 3) rather than mid-table junk.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	env := experiments.RunEnv{
		Ctx:                ctx,
		Limits:             core.Limits{MaxDepth: *depth, MaxNodes: *nodes, MaxComparisons: *cmps},
		PairWorkers:        *workers,
		Shards:             *shards,
		SimCache:           *cache,
		SpillThresholdRows: *spill,
		SpillDir:           *spillD,
	}
	if *trace != "" || *metrics != "" {
		var sinks []obs.Sink
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				return err
			}
			defer f.Close()
			jl := obs.NewJSONL(f)
			defer jl.Flush()
			sinks = append(sinks, jl)
		}
		env.Observer = obs.New(sinks...)
		if *metrics != "" {
			defer func() {
				if err := writeMetrics(*metrics, env.Observer.Metrics()); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: -metrics:", err)
				}
			}()
		}
	}
	var render func(experiments.Table) string
	switch *format {
	case "text":
		render = experiments.Table.String
	case "markdown":
		render = experiments.Table.Markdown
	default:
		return fmt.Errorf("unknown format %q (want text or markdown)", *format)
	}
	want := map[string]bool{}
	for _, a := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(strings.ToLower(a))] = true
	}
	all := want["all"]
	sel := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	if sel("table1") {
		fmt.Println("== Table 1: movie configuration relations ==")
		for _, t := range experiments.Table1() {
			fmt.Println(render(t))
		}
	}
	if sel("table2") {
		fmt.Println("== Table 2: temporary relations (worked example) ==")
		t, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(render(t))
	}
	if sel("table3") {
		fmt.Println("== Table 3: data set configurations ==")
		for _, t := range experiments.Table3() {
			fmt.Println(render(t))
		}
	}

	if sel("fig4a", "fig4b") {
		opts := experiments.Set1MoviesOptions{Seed: *seed, Env: env}
		if *quick {
			opts.Movies = 500
			opts.Windows = []int{2, 4, 8, 12}
		} else {
			opts.Movies = 5000
		}
		fmt.Printf("== Experiment set 1, Data set 1 (%d movies) ==\n", opts.Movies)
		r, err := experiments.ExpSet1Movies(opts)
		if err != nil {
			return err
		}
		fmt.Printf("planted duplicates: %d; all-pairs P=%.3f R=%.3f\n\n",
			r.PlantedDuplicates, r.AllPairsPrecision, r.AllPairsRecall)
		if sel("fig4a") {
			fmt.Println(render(r.RecallTable()))
		}
		if sel("fig4b") {
			fmt.Println(render(r.PrecisionTable()))
			fmt.Println(render(r.CostTable()))
		}
	}
	if sel("fig4c") {
		opts := experiments.Set1CDsOptions{Seed: *seed, Env: env}
		if *quick {
			opts.Discs = 200
			opts.Windows = []int{2, 4, 8, 12}
		}
		fmt.Println("== Experiment set 1, Data set 2 (CDs) ==")
		r, err := experiments.ExpSet1CDs(opts)
		if err != nil {
			return err
		}
		fmt.Println(render(r.FMeasureTable()))
	}
	if sel("fig4d") {
		opts := experiments.Set1LargeOptions{Seed: *seed, Env: env}
		if *quick {
			opts.Discs = 2000
			opts.Windows = []int{2, 5}
		}
		discs := opts.Discs
		if discs == 0 {
			discs = 10000
		}
		fmt.Printf("== Experiment set 1, Data set 3 (%d discs) ==\n", discs)
		r, err := experiments.ExpSet1Large(opts)
		if err != nil {
			return err
		}
		fmt.Println(render(r.PrecisionTable()))
		fmt.Println(render(r.DuplicatesTable()))
		fmt.Println(render(r.BreakdownTable("SP key1")))
		fmt.Println(render(r.BreakdownTable("MP")))
	}
	if sel("fig5", "fig5a", "fig5b", "fig5c", "fig5d") {
		opts := experiments.Set2Options{Seed: *seed, Env: env}
		if *quick {
			opts.Sizes = []int{500, 1000, 2000}
		} else {
			opts.Sizes = []int{1000, 2000, 5000, 10000, 20000}
		}
		fmt.Println("== Experiment set 2: scalability ==")
		r, err := experiments.ExpSet2Scalability(opts)
		if err != nil {
			return err
		}
		if sel("fig5", "fig5a") {
			fmt.Println(render(r.VariantTable("clean")))
		}
		if sel("fig5", "fig5b") {
			fmt.Println(render(r.VariantTable("few duplicates")))
		}
		if sel("fig5", "fig5c") {
			fmt.Println(render(r.VariantTable("many duplicates")))
		}
		if sel("fig5", "fig5d") {
			fmt.Println(render(r.OverheadTable()))
		}
	}
	if sel("ablations") {
		opts := experiments.AblationOptions{Seed: *seed, Env: env}
		if *quick {
			opts.Movies = 300
		} else {
			opts.Movies = 2000
		}
		fmt.Println("== Ablations (filter, adaptive window, DE-SNM, all-pairs) ==")
		r, err := experiments.ExpAblations(opts)
		if err != nil {
			return err
		}
		fmt.Println(render(r.Table()))
	}
	if sel("fig6a", "fig6b") {
		opts := experiments.Set3Options{Seed: *seed, Env: env}
		if *quick {
			opts.Discs = 250
		}
		fmt.Println("== Experiment set 3: threshold impact ==")
		r, err := experiments.ExpSet3Thresholds(opts)
		if err != nil {
			return err
		}
		if sel("fig6a") {
			fmt.Println(render(r.ODTable()))
		}
		if sel("fig6b") {
			fmt.Println(render(r.DescTable()))
		}
		fmt.Printf("best f-measure: OD-only %.3f (threshold %.2f), with descendants %.3f (threshold %.2f)\n",
			r.BestODOnlyF, r.BestODOnlyThreshold(), r.BestDescF, r.BestDescThreshold())
	}
	return nil
}
