// Command sxnmd serves SXNM duplicate detection as a crash-tolerant
// daemon.
//
// Usage:
//
//	sxnmd -spool /var/lib/sxnmd [-addr :8080] [flags]
//
// Clients POST jobs (an XML document plus an SXNM configuration) to
// /v1/jobs and poll them; see the README's "Running as a service"
// section for the full API. The spool directory is the daemon's
// durable state: every admitted job lives there until it reaches a
// terminal state, together with its engine checkpoint, spill files,
// run report, and final metrics.
//
// Robustness model:
//
//   - Admission control: the queue is bounded (-queue-cap) and each
//     tenant is capped (-tenant-jobs); rejected submissions get a 429
//     with Retry-After. Per-job budgets (-max-* flags) are ceilings a
//     job's own limits may not exceed.
//   - Retries: transient faults restart the job with exponential
//     backoff and jitter up to -max-attempts; because every attempt
//     runs over the job's durable checkpoint, a retry resumes rather
//     than redoes. Invalid configs/documents and corrupt state fail
//     fast without retry.
//   - Panic containment: a panic inside the engine fails that one job;
//     the daemon keeps serving.
//   - Graceful drain: SIGTERM (or SIGINT) stops admission (/readyz
//     turns 503), interrupts in-flight jobs after their next durable
//     checkpoint, releases their leases, and exits once everything is
//     parked in the spool. The next sxnmd over the same -spool resumes
//     queued and in-flight jobs alike, completing them byte-identically
//     to an uninterrupted run.
//   - Shared spool: several sxnmd processes may point at one -spool.
//     Per-job lease files (-lease-ttl, -spool-owner) arbitrate
//     ownership; a daemon that dies without draining loses its jobs to
//     the survivors one TTL later, and they resume from its last
//     checkpoint. A stale owner that comes back fences itself off the
//     spool instead of double-writing.
//   - Spool lifecycle: terminal jobs are garbage-collected after
//     -gc-ttl; corrupt spool entries are moved into .quarantine/ with a
//     typed reason instead of crashing the daemon; -min-free-bytes (or
//     a live ENOSPC) closes admission with 507 + Retry-After until
//     space returns; -tenant-rps adds a per-tenant submission rate
//     limit on top of the concurrency caps.
//   - Observability: each job's spool directory carries a durable,
//     checksummed event journal (journal.jsonl) recording its full
//     lifecycle — across daemons and takeovers. GET
//     /v1/jobs/{id}/events streams it as SSE (replay then live tail),
//     GET /v1/fleet reports which owners hold which leases, and
//     /metrics adds queue-wait, attempt, end-to-end, and engine-phase
//     latency histograms. -journal=false turns the journal off;
//     -journal-max-bytes caps its growth.
//
// Exit codes: 0 = clean drain, 1 = startup or serve error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	sxnm "repro"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "sxnmd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a termination signal drains
// it. When ready is non-nil, the bound address is sent once the
// listener is up (tests use it to avoid port races).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("sxnmd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		spoolDir   = fs.String("spool", "", "durable job spool directory (required)")
		workers    = fs.Int("workers", 2, "concurrent job executors")
		queueCap   = fs.Int("queue-cap", 64, "max queued jobs before submissions are rejected 429")
		tenantJobs = fs.Int("tenant-jobs", 4, "max queued+running jobs per tenant")
		maxBody    = fs.Int64("max-body-bytes", 8<<20, "max POST /v1/jobs body size")
		attempts   = fs.Int("max-attempts", 3, "attempts per job before a transient fault becomes permanent")
		retryBase  = fs.Duration("retry-base", 100*time.Millisecond, "base retry backoff (doubled per attempt, with jitter)")
		retryMax   = fs.Duration("retry-max", 5*time.Second, "retry backoff ceiling")
		drainWait  = fs.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs to checkpoint on shutdown")

		spoolOwner  = fs.String("spool-owner", "", "this daemon's lease owner id (default host-pid-random; pin it to reclaim your own leases instantly after a restart)")
		leaseTTL    = fs.Duration("lease-ttl", 15*time.Second, "lease lifetime beyond the last heartbeat; a daemon silent this long loses its jobs to takeover")
		gcTTL       = fs.Duration("gc-ttl", 0, "remove terminal jobs from the spool this long after they finish (0 = keep forever)")
		tenantRPS   = fs.Float64("tenant-rps", 0, "per-tenant submission rate limit in jobs/second (0 = unlimited)")
		tenantBurst = fs.Int("tenant-burst", 0, "per-tenant submission burst size (0 = max(1, ceil(tenant-rps)))")
		minFree     = fs.Int64("min-free-bytes", 0, "reject submissions 507 while the spool filesystem has less free space than this (0 = ENOSPC detection only)")

		defTimeout = fs.Duration("default-timeout", 0, "default per-job wall-clock budget (0 = unlimited)")
		maxTimeout = fs.Duration("max-timeout", 0, "per-job wall-clock ceiling jobs may not exceed (0 = unbounded)")
		maxDepth   = fs.Int("max-depth", 0, "per-job document depth ceiling (0 = unbounded)")
		maxNodes   = fs.Int("max-nodes", 0, "per-job document node ceiling (0 = unbounded)")
		maxCmp     = fs.Int("max-comparisons", 0, "per-job window-comparison ceiling (0 = unbounded)")

		journal      = fs.Bool("journal", true, "write a durable per-job event journal (journal.jsonl) into the spool")
		journalBytes = fs.Int64("journal-max-bytes", 1<<20, "per-job journal size soft cap; past it checkpoint-progress events are dropped (negative = unbounded)")

		pairWork  = fs.Int("pair-workers", -1, "window-sweep goroutines per job (-1 = all cores, 0 = sequential)")
		shards    = fs.Int("shards", 0, "split each key pass into this many concurrently swept window ranges (-1 = one per core, 0 = off)")
		simCache  = fs.Bool("sim-cache", true, "share similarity memo caches across jobs of the same config")
		simSize   = fs.Int("sim-cache-size", 0, "similarity cache capacity per candidate (0 = default)")
		spillRows = fs.Int("spill-rows", 0, "external-sort candidates above this many GK rows (0 = in-memory)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spoolDir == "" {
		return errors.New("-spool is required")
	}

	logger := log.New(os.Stderr, "sxnmd: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		SpoolDir:        *spoolDir,
		OwnerID:         *spoolOwner,
		LeaseTTL:        *leaseTTL,
		GCTTL:           *gcTTL,
		TenantRPS:       *tenantRPS,
		TenantBurst:     *tenantBurst,
		MinFreeBytes:    *minFree,
		QueueCap:        *queueCap,
		Workers:         *workers,
		PerTenantJobs:   *tenantJobs,
		MaxBodyBytes:    *maxBody,
		MaxAttempts:     *attempts,
		RetryBaseDelay:  *retryBase,
		RetryMaxDelay:   *retryMax,
		DisableJournal:  !*journal,
		JournalMaxBytes: *journalBytes,
		DefaultLimits:   sxnm.Limits{Timeout: *defTimeout},
		MaxLimits: sxnm.Limits{
			Timeout:        *maxTimeout,
			MaxDepth:       *maxDepth,
			MaxNodes:       *maxNodes,
			MaxComparisons: *maxCmp,
		},
		Engine: sxnm.Options{
			PairWorkers:        *pairWork,
			Shards:             *shards,
			SimCache:           *simCache,
			SimCacheSize:       *simSize,
			SpillThresholdRows: *spillRows,
		},
		Logf: logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s, spool %s", ln.Addr(), *spoolDir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("draining: admission closed, checkpointing in-flight jobs")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	// Shut the listener down after the drain so /readyz keeps
	// answering 503 while in-flight jobs park themselves.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	logger.Printf("drained cleanly; spool %s is ready for the next generation", *spoolDir)
	return nil
}
