package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The daemon smoke test: a real sxnmd process lifecycle, in-process.
// Start the daemon, submit a job over HTTP, SIGTERM it mid-run, require
// a clean drain, start a second generation over the same spool, and
// require the job to resume and finish. This is the CI "daemon smoke"
// job and the closest automated stand-in for an operator's kill -TERM.

const smokeConfigXML = `
<sxnm-config window="4">
  <candidate name="movie" xpath="movie_database/movies/movie"
             rule="either" odThreshold="0.7" descThreshold="0.4">
    <path id="1" relPath="title/text()"/>
    <path id="2" relPath="@year"/>
    <od pid="1" relevance="0.8"/>
    <od pid="2" relevance="0.2" sim="year"/>
    <key name="title"><part pid="1" order="1" pattern="K1-K5"/></key>
    <key name="year">
      <part pid="2" order="1" pattern="D3,D4"/>
      <part pid="1" order="2" pattern="K1,K2"/>
    </key>
  </candidate>
  <candidate name="person" xpath="movie_database/movies/movie/people/person"
             threshold="0.85">
    <path id="1" relPath="text()"/>
    <od pid="1" relevance="1"/>
    <key name="name"><part pid="1" order="1" pattern="C1-C6"/></key>
  </candidate>
</sxnm-config>`

// smokeDoc builds a corpus large enough that the run is still in
// flight when the test pulls the trigger.
func smokeDoc(n int) string {
	titles := []string{
		"The Matrix", "Matrix, The", "The Matrrix",
		"The Mask of Zorro", "Mask of Zorro",
		"The Godfather", "Godfather, The", "Leon",
	}
	var b strings.Builder
	b.WriteString("<movie_database><movies>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b,
			`<movie year="%d"><title>%s %d</title><people><person>Actor Number %d</person><person>Actress Number %d</person></people></movie>`,
			1970+i%40, titles[i%len(titles)], i%97, i%89, i%83)
	}
	b.WriteString("</movies></movie_database>")
	return b.String()
}

// startDaemon launches run() in a goroutine and waits for its listener.
func startDaemon(t *testing.T, spool string) (base string, exited <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-spool", spool,
			"-workers", "1",
			"-pair-workers", "0",
			"-spill-rows", "64",
			"-retry-base", "1ms",
			"-drain-timeout", "1m",
		}, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}
	return "", nil
}

func getStatus(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDaemonSmokeSIGTERMRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke is not a -short test")
	}
	// Keep SIGTERM's default action (kill the test process) disabled
	// for the whole run, covering the instant before run() registers
	// its own handler.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	spool := t.TempDir()
	base, exited := startDaemon(t, spool)

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	body, err := json.Marshal(map[string]any{
		"config_xml":   smokeConfigXML,
		"document_xml": smokeDoc(1500),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &submitted); err != nil || submitted.ID == "" {
		t.Fatalf("submit response %s: %v", raw, err)
	}

	// Fire SIGTERM once the worker has the job. The corpus is big
	// enough that the run is normally still going; if the machine is
	// fast and it already finished, the test still proves the restart
	// serves the finished job.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := getStatus(t, base, submitted.ID)["state"]
		if st == "running" || st == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon did not drain cleanly: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}

	// Generation 2 over the same spool: the job resumes (or its
	// finished record is served) and reaches done.
	base2, exited2 := startDaemon(t, spool)
	resp, err = http.Get(base2 + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted readyz: %v %v", resp, err)
	}
	resp.Body.Close()

	deadline = time.Now().Add(120 * time.Second)
	for {
		st, _ := getStatus(t, base2, submitted.ID)["state"].(string)
		if st == "done" {
			break
		}
		if st == "failed" || st == "canceled" {
			t.Fatalf("resumed job ended %s: %v", st, getStatus(t, base2, submitted.ID))
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished (state %s)", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err = http.Get(base2 + "/v1/jobs/" + submitted.ID + "/clusters")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clusters after resume: %d %s", resp.StatusCode, raw)
	}
	var clusters struct {
		Clusters map[string][][]int `json:"clusters"`
	}
	if err := json.Unmarshal(raw, &clusters); err != nil {
		t.Fatal(err)
	}
	if len(clusters.Clusters["movie"]) == 0 || len(clusters.Clusters["person"]) == 0 {
		t.Fatalf("resumed job returned empty clusters: %s", raw)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited2:
		if err != nil {
			t.Fatalf("second generation drain: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("second generation never exited")
	}
}

func TestRunRequiresSpool(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0"}, nil); err == nil {
		t.Fatal("run without -spool succeeded")
	}
}
