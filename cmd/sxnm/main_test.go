package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sxnm "repro"
)

const testConfig = `
<sxnm-config>
  <candidate name="movie" xpath="movie_database/movies/movie" window="5" threshold="0.8">
    <path id="1" relPath="title/text()"/>
    <od pid="1" relevance="1"/>
    <key><part pid="1" order="1" pattern="K1-K5"/></key>
  </candidate>
</sxnm-config>`

const testData = `
<movie_database>
  <movies>
    <movie><title>Silent River</title></movie>
    <movie><title>Silnt River</title></movie>
    <movie><title>Broken Storm</title></movie>
  </movies>
</movie_database>`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	out := filepath.Join(dir, "clean.xml")
	if err := run([]string{"-config", cfg, "-input", data, "-output", out, "-clusters", "-stats"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	cleaned, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleaned) == 0 {
		t.Error("empty output document")
	}
}

func TestRunMissingFlags(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags should fail")
	}
	if err := run([]string{"-config", "x.xml"}); err == nil {
		t.Error("missing -input should fail")
	}
}

func TestRunBadFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	if err := run([]string{"-config", filepath.Join(dir, "absent.xml"), "-input", data}); err == nil {
		t.Error("absent config should fail")
	}
	if err := run([]string{"-config", cfg, "-input", filepath.Join(dir, "absent.xml")}); err == nil {
		t.Error("absent input should fail")
	}
	badCfg := write(t, dir, "bad.xml", "<sxnm-config/>")
	if err := run([]string{"-config", badCfg, "-input", data}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRunLimitFlags(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)

	// Unreachable limits leave the run untouched.
	if err := run([]string{"-config", cfg, "-input", data,
		"-timeout", "1m", "-max-depth", "100", "-max-nodes", "10000", "-max-comparisons", "100000"}); err != nil {
		t.Fatalf("generous limits: %v", err)
	}

	// The document nests movie_database/movies/movie/title: depth 4.
	err := run([]string{"-config", cfg, "-input", data, "-max-depth", "2"})
	var le *sxnm.LimitError
	if !errors.As(err, &le) || le.Limit != "max-depth" {
		t.Errorf("-max-depth 2: want max-depth LimitError, got %v", err)
	}

	err = run([]string{"-config", cfg, "-input", data, "-max-nodes", "3"})
	if !errors.As(err, &le) || le.Limit != "max-nodes" {
		t.Errorf("-max-nodes 3: want max-nodes LimitError, got %v", err)
	}

	// Three movies in a window of five: three comparisons, so a cap of
	// one interrupts the sliding window mid-candidate.
	err = run([]string{"-config", cfg, "-input", data, "-max-comparisons", "1"})
	if !errors.Is(err, sxnm.ErrLimitExceeded) {
		t.Errorf("-max-comparisons 1: want ErrLimitExceeded, got %v", err)
	}
}

func TestRunTimeoutFlag(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	// An already-expired deadline is noticed at the latest when the
	// first candidate enters transitive closure.
	err := run([]string{"-config", cfg, "-input", data, "-timeout", "1ns"})
	if !errors.Is(err, sxnm.ErrDeadlineExceeded) {
		t.Errorf("-timeout 1ns: want ErrDeadlineExceeded, got %v", err)
	}
}

func TestSnippet(t *testing.T) {
	if got := snippet("short", 10); got != "short" {
		t.Errorf("snippet = %q", got)
	}
	if got := snippet("a very long text that exceeds the limit", 10); got != "a very lon..." {
		t.Errorf("snippet = %q", got)
	}
}

func TestRunExports(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	csvOut := filepath.Join(dir, "dups.csv")
	xmlOut := filepath.Join(dir, "clusters.xml")
	if err := run([]string{"-config", cfg, "-input", data,
		"-clusters-csv", csvOut, "-clusters-xml", xmlOut}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{csvOut, xmlOut} {
		info, err := os.Stat(p)
		if err != nil || info.Size() == 0 {
			t.Errorf("export %s missing or empty: %v", p, err)
		}
	}
}

func TestRunStreamMode(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	xmlOut := filepath.Join(dir, "clusters.xml")
	if err := run([]string{"-config", cfg, "-input", data, "-stream", "-stats", "-clusters-xml", xmlOut}); err != nil {
		t.Fatalf("stream run: %v", err)
	}
	if info, err := os.Stat(xmlOut); err != nil || info.Size() == 0 {
		t.Error("stream run did not write cluster XML")
	}
	// Incompatible flags are rejected.
	if err := run([]string{"-config", cfg, "-input", data, "-stream", "-clusters"}); err == nil {
		t.Error("-stream with -clusters should fail")
	}
}

func TestRunGKPipeline(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	gk := filepath.Join(dir, "gk.tsv")
	if err := run([]string{"-config", cfg, "-input", data, "-gk-out", gk}); err != nil {
		t.Fatalf("phase 1: %v", err)
	}
	if info, err := os.Stat(gk); err != nil || info.Size() == 0 {
		t.Fatal("GK dump missing")
	}
	if err := run([]string{"-config", cfg, "-gk-in", gk, "-stats"}); err != nil {
		t.Fatalf("phase 2: %v", err)
	}
	// Incompatible combinations rejected.
	if err := run([]string{"-config", cfg, "-gk-in", gk, "-clusters"}); err == nil {
		t.Error("-gk-in with -clusters should fail")
	}
	if err := run([]string{"-config", cfg}); err == nil {
		t.Error("neither -input nor -gk-in should fail")
	}
}

func TestRunCheckpointFlag(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	ckpt := filepath.Join(dir, "ckpt")

	// An interrupted checkpointed run exits with the interruption cause
	// and leaves a resumable checkpoint behind.
	err := run([]string{"-config", cfg, "-input", data, "-checkpoint", ckpt, "-max-comparisons", "1"})
	if !errors.Is(err, sxnm.ErrLimitExceeded) {
		t.Fatalf("capped checkpointed run: want ErrLimitExceeded, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckpt, "manifest.tsv")); err != nil {
		t.Fatalf("no manifest after interruption: %v", err)
	}

	// The same command without the cap resumes and completes.
	if err := run([]string{"-config", cfg, "-input", data, "-checkpoint", ckpt, "-clusters"}); err != nil {
		t.Fatalf("resume: %v", err)
	}

	// A checkpoint bound to different data is refused.
	other := write(t, dir, "other.xml", strings.Replace(testData, "Broken Storm", "Broken Stone", 1))
	if err := run([]string{"-config", cfg, "-input", other, "-checkpoint", ckpt}); !errors.Is(err, sxnm.ErrCheckpointMismatch) {
		t.Errorf("mismatched input: want ErrCheckpointMismatch, got %v", err)
	}
}

func TestRunCheckpointFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "cfg.xml", testConfig)
	data := write(t, dir, "data.xml", testData)
	for _, args := range [][]string{
		{"-config", cfg, "-input", data, "-checkpoint", dir, "-stream"},
		{"-config", cfg, "-gk-in", data, "-checkpoint", dir},
	} {
		if err := run(args); err == nil || !strings.Contains(err.Error(), "-checkpoint") {
			t.Errorf("%v: want -checkpoint conflict error, got %v", args, err)
		}
	}
}
