// Command sxnm deduplicates an XML document with the Sorted XML
// Neighborhood Method.
//
// Usage:
//
//	sxnm -config config.xml -input data.xml [-output clean.xml] [-clusters] [-stats]
//
// The configuration file defines candidates, object descriptions, and
// keys (see the package documentation of repro for the format). With
// -clusters the detected duplicate clusters are printed per candidate;
// with -output a de-duplicated copy of the input is written.
//
// Operational limits: -timeout bounds the wall clock, -max-depth and
// -max-nodes reject oversized documents at parse time, and
// -max-comparisons caps the sliding-window work. An interrupted run
// (limit breach, timeout, SIGINT, or SIGTERM) reports the candidates
// that finished and exits with code 3 instead of 1.
//
// With -checkpoint DIR the run persists its progress to DIR
// crash-safely; rerunning the same command after an interruption or a
// crash resumes from the last durable state instead of starting over.
// A checkpoint recorded for a different config or input is refused.
//
// Performance: -pair-workers N parallelizes the window sweep inside
// each key pass (default: all cores; 0 restores the single-threaded
// sweep), -shards N splits each pass's sorted table into N contiguous
// ranges swept concurrently with window-sized halo overlap (-1 = one
// per core), and -sim-cache memoizes similarity computations per
// candidate (-sim-cache-size bounds it). All are answer-preserving:
// clusters, statistics, checkpoints, and reports are byte-identical
// to the sequential, uncached run.
//
// Memory: -spill-rows N external-sorts any candidate with more than N
// GK rows through checksummed run files on disk (in -spill-dir, or a
// temp dir) instead of sorting in memory, bounding detection memory
// for documents bigger than RAM. The spill path is answer-preserving
// too, and with -spill-dir plus -checkpoint, sorted runs are
// fingerprinted and reused on resume.
//
// Observability: -trace FILE streams a JSONL span trace of every
// phase (-trace-max-bytes/-trace-keep add size-capped rotation for
// long runs), -metrics FILE dumps the final counters in Prometheus text
// format, -report FILE writes a machine-readable run report
// (report.json) with per-candidate per-pass statistics, -progress
// prints a live progress line with ETA to stderr (redrawn in place on
// a terminal, appended at a low rate otherwise), and -pprof ADDR
// serves net/http/pprof (plus /debug/vars with live sxnm counters)
// for the run's duration. All observability outputs are also written
// for interrupted runs, so a cut-short job still leaves its trace and
// report behind. Pass "-" as FILE to write to stdout (stderr for
// -trace).
//
// Exit codes: 0 = success, 1 = error (bad flags, unreadable input,
// invalid config, mismatched checkpoint), 3 = interrupted (partial
// results reported; resumable when -checkpoint is set).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "net/http/pprof"

	sxnm "repro"
	"repro/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sxnm:", err)
		if errors.Is(err, sxnm.ErrCanceled) ||
			errors.Is(err, sxnm.ErrDeadlineExceeded) ||
			errors.Is(err, sxnm.ErrLimitExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sxnm", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "SXNM configuration XML (required)")
		inputPath  = fs.String("input", "", "XML document to deduplicate (required)")
		outputPath = fs.String("output", "", "write a de-duplicated copy here")
		clusters   = fs.Bool("clusters", false, "print duplicate clusters per candidate")
		stats      = fs.Bool("stats", false, "print phase timings and comparison counts")
		csvPath    = fs.String("clusters-csv", "", "write duplicate groups as CSV here")
		xmlPath    = fs.String("clusters-xml", "", "write the full cluster sets as XML here")
		stream     = fs.Bool("stream", false, "streaming key generation (bounded memory; summary and stats only)")
		gkOut      = fs.String("gk-out", "", "write the generated GK relations here (phase 1 only)")
		gkIn       = fs.String("gk-in", "", "run detection over previously saved GK relations instead of -input")
		ckptDir    = fs.String("checkpoint", "", "persist progress to this directory and auto-resume from it")
		timeout    = fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = unlimited)")
		maxDepth   = fs.Int("max-depth", 0, "reject documents nested deeper than this many elements (0 = unlimited)")
		maxNodes   = fs.Int("max-nodes", 0, "reject documents with more than this many nodes (0 = unlimited)")
		maxCmp     = fs.Int("max-comparisons", 0, "stop after this many window comparisons (0 = unlimited)")
		tracePath  = fs.String("trace", "", "stream a JSONL span trace of every phase to this file (\"-\" = stderr)")
		traceMax   = fs.Int64("trace-max-bytes", 0, "rotate the -trace file when it would exceed this size (0 = never rotate)")
		traceKeep  = fs.Int("trace-keep", 3, "rotated -trace segments to keep (file.1 … file.N; 0 = discard on rotate)")
		metricsOut = fs.String("metrics", "", "write the final counters in Prometheus text format to this file (\"-\" = stdout)")
		reportOut  = fs.String("report", "", "write a machine-readable run report (JSON) to this file (\"-\" = stdout)")
		progress   = fs.Bool("progress", false, "print live progress with ETA to stderr")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof and /debug/vars on this address for the run's duration")
		useFilter  = fs.Bool("filter", true, "threshold-aware comparison fast path: sketch bounds + banded edit distance skip hopeless pairs (identical clusters; skipped pairs count as filtered, not compared)")
		pairWork   = fs.Int("pair-workers", -1, "window-sweep comparison goroutines per pass (-1 = all cores, 0 = sequential); results are identical either way")
		shards     = fs.Int("shards", 0, "split each key pass into this many window ranges swept concurrently (-1 = one per core, 0 = off); results are identical either way")
		simCache   = fs.Bool("sim-cache", false, "memoize similarity computations per candidate (identical results; helps on repetitive values and multi-key configs)")
		simCacheN  = fs.Int("sim-cache-size", 0, "similarity cache capacity per candidate (0 = default)")
		spillRows  = fs.Int("spill-rows", 0, "external-sort candidates with more rows than this instead of sorting in memory (0 = always in memory); results are identical either way")
		spillDir   = fs.String("spill-dir", "", "directory for spill run files, reused across resumed runs (default: a temp dir, removed afterwards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || (*inputPath == "" && *gkIn == "") {
		fs.Usage()
		return fmt.Errorf("-config and one of -input or -gk-in are required")
	}
	lim := sxnm.Limits{
		Timeout:        *timeout,
		MaxDepth:       *maxDepth,
		MaxNodes:       *maxNodes,
		MaxComparisons: *maxCmp,
	}

	cfg, err := sxnm.LoadConfigFile(*configPath)
	if err != nil {
		return err
	}
	o, err := setupObservability(obsFlags{
		trace:         *tracePath,
		traceMaxBytes: *traceMax,
		traceKeep:     *traceKeep,
		metrics:       *metricsOut,
		report:        *reportOut,
		progress:      *progress,
		pprof:         *pprofAddr,
		input:         firstNonEmpty(*inputPath, *gkIn),
	})
	if err != nil {
		return err
	}
	defer o.close()
	det, err := sxnm.NewWithOptions(cfg, sxnm.Options{
		Limits:             lim,
		Observer:           o.ob,
		UseFilter:          *useFilter,
		PairWorkers:        *pairWork,
		Shards:             *shards,
		SimCache:           *simCache,
		SimCacheSize:       *simCacheN,
		SpillThresholdRows: *spillRows,
		SpillDir:           *spillDir,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var doc *sxnm.Document
	var res *sxnm.Result
	var runErr error
	if *ckptDir != "" && (*stream || *gkIn != "") {
		// Both modes run without a materialized document, so there is
		// no document fingerprint to bind the checkpoint to.
		return fmt.Errorf("-checkpoint cannot be combined with -stream or -gk-in")
	}
	o.startProgress()
	if *gkIn != "" {
		if *stream || *outputPath != "" || *clusters || *csvPath != "" || *gkOut != "" {
			return fmt.Errorf("-gk-in supports only the summary, -stats, and -clusters-xml outputs")
		}
		f, err := os.Open(*gkIn)
		if err != nil {
			return err
		}
		defer f.Close()
		res, runErr = det.RunFromGKContext(ctx, f)
	} else if *stream {
		if *outputPath != "" || *clusters || *csvPath != "" {
			return fmt.Errorf("-stream supports only the summary, -stats, and -clusters-xml outputs (no document is materialized)")
		}
		res, runErr = det.RunStreamFileContext(ctx, *inputPath)
	} else {
		sp := o.ob.StartSpan("parse")
		doc, err = xmltree.ParseFileWithLimits(*inputPath, lim)
		sp.End()
		if err != nil {
			return err
		}
		if *ckptDir != "" {
			res, runErr = det.RunCheckpointedContext(ctx, doc, *ckptDir)
		} else {
			res, runErr = det.RunContext(ctx, doc)
		}
	}
	o.stopProgress()
	// Observability outputs are written for interrupted runs too: a
	// cut-short job still leaves its trace, metrics, and report behind.
	if oerr := o.finish(cfg, doc); oerr != nil {
		if runErr == nil {
			return oerr
		}
		fmt.Fprintln(os.Stderr, "sxnm:", oerr)
	}
	if runErr != nil {
		if res == nil || res.Incomplete == nil {
			return runErr
		}
		// Graceful degradation: report how far the run got, summarize
		// the candidates that completed, and exit with the interruption
		// status. Document-derived outputs are skipped — they would
		// silently reflect a partially deduplicated document.
		reportIncomplete(res)
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "sxnm: progress saved; rerun the same command to resume from %s\n", *ckptDir)
		}
		for _, s := range sxnm.Summarize(res) {
			fmt.Printf("%s: %d elements, %d clusters, %d duplicate groups, %d duplicate pairs\n",
				s.Candidate, s.Elements, s.Clusters, s.NonSingleton, s.Pairs)
		}
		return runErr
	}

	if *gkOut != "" {
		f, err := os.Create(*gkOut)
		if err != nil {
			return err
		}
		if err := det.WriteGK(doc, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote GK relations to %s\n", *gkOut)
	}

	for _, s := range sxnm.Summarize(res) {
		fmt.Printf("%s: %d elements, %d clusters, %d duplicate groups, %d duplicate pairs\n",
			s.Candidate, s.Elements, s.Clusters, s.NonSingleton, s.Pairs)
	}
	if *clusters {
		printClusters(doc, res)
	}
	if *stats {
		fmt.Printf("key generation:     %v\n", res.Stats.KeyGen)
		fmt.Printf("sliding window:     %v (CPU, summed over workers)\n", res.Stats.SlidingWindow)
		fmt.Printf("transitive closure: %v (CPU, summed over workers)\n", res.Stats.TransitiveClosure)
		fmt.Printf("duplicate detection (SW+TC, CPU): %v\n", res.Stats.DuplicateDetection())
		fmt.Printf("duplicate detection (wall clock): %v\n", res.Stats.DetectionWall)
		fmt.Printf("comparisons: %d, duplicate pairs: %d\n",
			res.Stats.Comparisons, res.Stats.DuplicatePairs)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := sxnm.WriteClustersCSV(f, doc, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote duplicate groups to %s\n", *csvPath)
	}
	if *xmlPath != "" {
		if err := sxnm.ClustersDocument(res).WriteFile(*xmlPath, xmltree.WriteOptions{Indent: "  ", Header: true}); err != nil {
			return err
		}
		fmt.Printf("wrote cluster sets to %s\n", *xmlPath)
	}
	if *outputPath != "" {
		clean := sxnm.Deduplicate(doc, res)
		if err := clean.WriteFile(*outputPath, xmltree.WriteOptions{Indent: "  ", Header: true}); err != nil {
			return err
		}
		fmt.Printf("wrote de-duplicated document to %s\n", *outputPath)
	}
	return nil
}

// obsFlags carries the observability flag values into setupObservability.
type obsFlags struct {
	trace         string
	traceMaxBytes int64
	traceKeep     int
	metrics       string
	report        string
	progress      bool
	pprof         string
	input         string
}

// observability owns the run's observer and its output destinations.
// The zero value (no flag set) is fully inert: ob is nil, every method
// is a no-op, and the engine pays only a nil test.
type observability struct {
	ob       *sxnm.Observer
	col      *sxnm.Collector
	traceOut *sxnm.TraceJSONL
	traceRot *sxnm.RotatingTraceJSONL
	traceC   io.Closer
	prog     *sxnm.Progress
	metrics  string
	report   string
	input    string
}

// setupObservability builds the observer demanded by the flags: a
// JSONL sink for -trace, a Collector for -report, bare metrics for
// -metrics/-progress, and a pprof listener (with /debug/vars carrying
// the live counters) for -pprof.
func setupObservability(f obsFlags) (*observability, error) {
	o := &observability{metrics: f.metrics, report: f.report, input: f.input}
	if f.trace == "" && f.metrics == "" && f.report == "" && !f.progress && f.pprof == "" {
		return o, nil
	}
	var sinks []sxnm.TraceSink
	switch {
	case f.trace != "" && f.trace != "-" && f.traceMaxBytes > 0:
		// Size-capped rotation: the trace file is bounded at roughly
		// traceMaxBytes·(traceKeep+1) no matter how long the run is.
		rot, err := sxnm.NewRotatingTraceJSONL(f.trace, f.traceMaxBytes, f.traceKeep)
		if err != nil {
			return nil, err
		}
		o.traceRot = rot
		sinks = append(sinks, rot)
	case f.trace != "":
		w := io.Writer(os.Stderr)
		if f.trace != "-" {
			file, err := os.Create(f.trace)
			if err != nil {
				return nil, err
			}
			o.traceC = file
			w = file
		}
		o.traceOut = sxnm.NewTraceJSONL(w)
		sinks = append(sinks, o.traceOut)
	}
	if f.report != "" {
		o.col = sxnm.NewCollector()
		sinks = append(sinks, o.col)
	}
	o.ob = sxnm.NewObserver(sinks...)
	if f.progress {
		o.prog = sxnm.NewProgress(os.Stderr, o.ob.Metrics(), 0)
	}
	if f.pprof != "" {
		o.ob.Metrics().PublishExpvar("sxnm")
		ln, err := net.Listen("tcp", f.pprof)
		if err != nil {
			return nil, fmt.Errorf("-pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "sxnm: pprof on http://%s/debug/pprof/ (live counters at /debug/vars)\n", ln.Addr())
		go http.Serve(ln, nil)
	}
	return o, nil
}

func (o *observability) startProgress() {
	if o.prog != nil {
		o.prog.Start()
	}
}

func (o *observability) stopProgress() {
	if o.prog != nil {
		o.prog.Stop()
		o.prog = nil
	}
}

// finish flushes the trace and writes the -metrics and -report
// outputs. Called after the run regardless of how it ended.
func (o *observability) finish(cfg *sxnm.Config, doc *sxnm.Document) error {
	if o.ob == nil {
		return nil
	}
	o.ob.Metrics().SampleHeap()
	if o.traceOut != nil {
		if err := o.traceOut.Flush(); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	if o.traceRot != nil {
		if err := o.traceRot.Flush(); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	if o.metrics != "" {
		if err := writeTo(o.metrics, func(w io.Writer) error {
			return o.ob.Metrics().WritePrometheus(w)
		}); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
	}
	if o.report != "" {
		rep := o.col.Report(o.ob.Metrics())
		rep.GeneratedAt = time.Now().UTC()
		rep.Input = o.input
		if fp, err := sxnm.ConfigFingerprint(cfg); err == nil {
			rep.ConfigFingerprint = fp
		}
		if doc != nil {
			if fp, err := sxnm.DocumentFingerprint(doc); err == nil {
				rep.DocFingerprint = fp
			}
		}
		if err := writeTo(o.report, func(w io.Writer) error {
			return rep.WriteJSON(w)
		}); err != nil {
			return fmt.Errorf("-report: %w", err)
		}
	}
	return nil
}

// close releases the trace file; safe after finish and on early error
// returns.
func (o *observability) close() {
	o.stopProgress()
	if o.traceOut != nil {
		o.traceOut.Flush()
		o.traceOut = nil
	}
	if o.traceC != nil {
		o.traceC.Close()
		o.traceC = nil
	}
	if o.traceRot != nil {
		o.traceRot.Close()
		o.traceRot = nil
	}
}

// writeTo writes via fn to the named file, or to stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// reportIncomplete describes an interrupted run on stderr: the phase
// and cause, plus which candidates finished and which did not.
func reportIncomplete(res *sxnm.Result) {
	inc := res.Incomplete
	fmt.Fprintf(os.Stderr, "sxnm: run interrupted during %s: %v\n", inc.Phase, inc.Cause)
	if len(inc.Completed) > 0 {
		fmt.Fprintf(os.Stderr, "sxnm: completed candidates: %s\n", strings.Join(inc.Completed, ", "))
	}
	if len(inc.Interrupted) > 0 {
		fmt.Fprintf(os.Stderr, "sxnm: interrupted candidates: %s\n", strings.Join(inc.Interrupted, ", "))
	}
}

// printClusters shows each duplicate group with a short description of
// its members.
func printClusters(doc *sxnm.Document, res *sxnm.Result) {
	idx := doc.IndexByID()
	for _, s := range sxnm.Summarize(res) {
		cs := res.Clusters[s.Candidate]
		groups := cs.NonSingletons()
		if len(groups) == 0 {
			continue
		}
		fmt.Printf("\n%s duplicate groups:\n", s.Candidate)
		for _, c := range groups {
			fmt.Printf("  cluster %d:\n", c.ID)
			for _, eid := range c.Members {
				desc := ""
				if n := idx[eid]; n != nil {
					desc = snippet(n.DeepText(), 60)
				}
				fmt.Printf("    #%d %s\n", eid, desc)
			}
		}
	}
}

func snippet(s string, max int) string {
	runes := []rune(s)
	if len(runes) <= max {
		return s
	}
	return string(runes[:max]) + "..."
}
