// Command sxnm deduplicates an XML document with the Sorted XML
// Neighborhood Method.
//
// Usage:
//
//	sxnm -config config.xml -input data.xml [-output clean.xml] [-clusters] [-stats]
//
// The configuration file defines candidates, object descriptions, and
// keys (see the package documentation of repro for the format). With
// -clusters the detected duplicate clusters are printed per candidate;
// with -output a de-duplicated copy of the input is written.
//
// Operational limits: -timeout bounds the wall clock, -max-depth and
// -max-nodes reject oversized documents at parse time, and
// -max-comparisons caps the sliding-window work. An interrupted run
// (limit breach, timeout, SIGINT, or SIGTERM) reports the candidates
// that finished and exits with code 3 instead of 1.
//
// With -checkpoint DIR the run persists its progress to DIR
// crash-safely; rerunning the same command after an interruption or a
// crash resumes from the last durable state instead of starting over.
// A checkpoint recorded for a different config or input is refused.
//
// Exit codes: 0 = success, 1 = error (bad flags, unreadable input,
// invalid config, mismatched checkpoint), 3 = interrupted (partial
// results reported; resumable when -checkpoint is set).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	sxnm "repro"
	"repro/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sxnm:", err)
		if errors.Is(err, sxnm.ErrCanceled) ||
			errors.Is(err, sxnm.ErrDeadlineExceeded) ||
			errors.Is(err, sxnm.ErrLimitExceeded) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sxnm", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "SXNM configuration XML (required)")
		inputPath  = fs.String("input", "", "XML document to deduplicate (required)")
		outputPath = fs.String("output", "", "write a de-duplicated copy here")
		clusters   = fs.Bool("clusters", false, "print duplicate clusters per candidate")
		stats      = fs.Bool("stats", false, "print phase timings and comparison counts")
		csvPath    = fs.String("clusters-csv", "", "write duplicate groups as CSV here")
		xmlPath    = fs.String("clusters-xml", "", "write the full cluster sets as XML here")
		stream     = fs.Bool("stream", false, "streaming key generation (bounded memory; summary and stats only)")
		gkOut      = fs.String("gk-out", "", "write the generated GK relations here (phase 1 only)")
		gkIn       = fs.String("gk-in", "", "run detection over previously saved GK relations instead of -input")
		ckptDir    = fs.String("checkpoint", "", "persist progress to this directory and auto-resume from it")
		timeout    = fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = unlimited)")
		maxDepth   = fs.Int("max-depth", 0, "reject documents nested deeper than this many elements (0 = unlimited)")
		maxNodes   = fs.Int("max-nodes", 0, "reject documents with more than this many nodes (0 = unlimited)")
		maxCmp     = fs.Int("max-comparisons", 0, "stop after this many window comparisons (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" || (*inputPath == "" && *gkIn == "") {
		fs.Usage()
		return fmt.Errorf("-config and one of -input or -gk-in are required")
	}
	lim := sxnm.Limits{
		Timeout:        *timeout,
		MaxDepth:       *maxDepth,
		MaxNodes:       *maxNodes,
		MaxComparisons: *maxCmp,
	}

	cfg, err := sxnm.LoadConfigFile(*configPath)
	if err != nil {
		return err
	}
	det, err := sxnm.NewWithOptions(cfg, sxnm.Options{Limits: lim})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var doc *sxnm.Document
	var res *sxnm.Result
	var runErr error
	if *ckptDir != "" && (*stream || *gkIn != "") {
		// Both modes run without a materialized document, so there is
		// no document fingerprint to bind the checkpoint to.
		return fmt.Errorf("-checkpoint cannot be combined with -stream or -gk-in")
	}
	if *gkIn != "" {
		if *stream || *outputPath != "" || *clusters || *csvPath != "" || *gkOut != "" {
			return fmt.Errorf("-gk-in supports only the summary, -stats, and -clusters-xml outputs")
		}
		f, err := os.Open(*gkIn)
		if err != nil {
			return err
		}
		defer f.Close()
		res, runErr = det.RunFromGKContext(ctx, f)
	} else if *stream {
		if *outputPath != "" || *clusters || *csvPath != "" {
			return fmt.Errorf("-stream supports only the summary, -stats, and -clusters-xml outputs (no document is materialized)")
		}
		res, runErr = det.RunStreamFileContext(ctx, *inputPath)
	} else {
		if doc, err = xmltree.ParseFileWithLimits(*inputPath, lim); err != nil {
			return err
		}
		if *ckptDir != "" {
			res, runErr = det.RunCheckpointedContext(ctx, doc, *ckptDir)
		} else {
			res, runErr = det.RunContext(ctx, doc)
		}
	}
	if runErr != nil {
		if res == nil || res.Incomplete == nil {
			return runErr
		}
		// Graceful degradation: report how far the run got, summarize
		// the candidates that completed, and exit with the interruption
		// status. Document-derived outputs are skipped — they would
		// silently reflect a partially deduplicated document.
		reportIncomplete(res)
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "sxnm: progress saved; rerun the same command to resume from %s\n", *ckptDir)
		}
		for _, s := range sxnm.Summarize(res) {
			fmt.Printf("%s: %d elements, %d clusters, %d duplicate groups, %d duplicate pairs\n",
				s.Candidate, s.Elements, s.Clusters, s.NonSingleton, s.Pairs)
		}
		return runErr
	}

	if *gkOut != "" {
		f, err := os.Create(*gkOut)
		if err != nil {
			return err
		}
		if err := det.WriteGK(doc, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote GK relations to %s\n", *gkOut)
	}

	for _, s := range sxnm.Summarize(res) {
		fmt.Printf("%s: %d elements, %d clusters, %d duplicate groups, %d duplicate pairs\n",
			s.Candidate, s.Elements, s.Clusters, s.NonSingleton, s.Pairs)
	}
	if *clusters {
		printClusters(doc, res)
	}
	if *stats {
		fmt.Printf("key generation:     %v\n", res.Stats.KeyGen)
		fmt.Printf("sliding window:     %v\n", res.Stats.SlidingWindow)
		fmt.Printf("transitive closure: %v\n", res.Stats.TransitiveClosure)
		fmt.Printf("duplicate detection (SW+TC): %v\n", res.Stats.DuplicateDetection())
		fmt.Printf("comparisons: %d, duplicate pairs: %d\n",
			res.Stats.Comparisons, res.Stats.DuplicatePairs)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := sxnm.WriteClustersCSV(f, doc, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote duplicate groups to %s\n", *csvPath)
	}
	if *xmlPath != "" {
		if err := sxnm.ClustersDocument(res).WriteFile(*xmlPath, xmltree.WriteOptions{Indent: "  ", Header: true}); err != nil {
			return err
		}
		fmt.Printf("wrote cluster sets to %s\n", *xmlPath)
	}
	if *outputPath != "" {
		clean := sxnm.Deduplicate(doc, res)
		if err := clean.WriteFile(*outputPath, xmltree.WriteOptions{Indent: "  ", Header: true}); err != nil {
			return err
		}
		fmt.Printf("wrote de-duplicated document to %s\n", *outputPath)
	}
	return nil
}

// reportIncomplete describes an interrupted run on stderr: the phase
// and cause, plus which candidates finished and which did not.
func reportIncomplete(res *sxnm.Result) {
	inc := res.Incomplete
	fmt.Fprintf(os.Stderr, "sxnm: run interrupted during %s: %v\n", inc.Phase, inc.Cause)
	if len(inc.Completed) > 0 {
		fmt.Fprintf(os.Stderr, "sxnm: completed candidates: %s\n", strings.Join(inc.Completed, ", "))
	}
	if len(inc.Interrupted) > 0 {
		fmt.Fprintf(os.Stderr, "sxnm: interrupted candidates: %s\n", strings.Join(inc.Interrupted, ", "))
	}
}

// printClusters shows each duplicate group with a short description of
// its members.
func printClusters(doc *sxnm.Document, res *sxnm.Result) {
	idx := doc.IndexByID()
	for _, s := range sxnm.Summarize(res) {
		cs := res.Clusters[s.Candidate]
		groups := cs.NonSingletons()
		if len(groups) == 0 {
			continue
		}
		fmt.Printf("\n%s duplicate groups:\n", s.Candidate)
		for _, c := range groups {
			fmt.Printf("  cluster %d:\n", c.ID)
			for _, eid := range c.Members {
				desc := ""
				if n := idx[eid]; n != nil {
					desc = snippet(n.DeepText(), 60)
				}
				fmt.Printf("    #%d %s\n", eid, desc)
			}
		}
	}
}

func snippet(s string, max int) string {
	runes := []rune(s)
	if len(runes) <= max {
		return s
	}
	return string(runes[:max]) + "..."
}
