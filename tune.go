package sxnm

import "repro/internal/tune"

// Parameter tuning (the paper's Sec. 3.4 guidance: calibrate
// thresholds and windows on a labelled sample).

type (
	// TuneOptions configure a tuning sweep; see internal/tune.
	TuneOptions = tune.Options
	// TuneResult holds every evaluated setting plus the best one.
	TuneResult = tune.Result
	// TuneSetting is one evaluated parameter combination.
	TuneSetting = tune.Setting
)

// Tune sweeps thresholds (and optionally windows and descendant
// thresholds) for one candidate over a labelled sample document whose
// candidate elements carry x-gold identities, and reports the setting
// with the best f-measure. The configuration must be validated and is
// not modified.
func Tune(sample *Document, cfg *Config, opts TuneOptions) (*TuneResult, error) {
	return tune.Tune(sample, cfg, opts)
}

// ApplyTuned writes a tuned setting into the configuration's candidate
// and re-validates.
func ApplyTuned(cfg *Config, candidate string, best TuneSetting) error {
	return tune.Apply(cfg, candidate, best)
}
