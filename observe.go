package sxnm

import (
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// Observability re-exports. Attach an Observer via Options.Observer
// (or NewWithOptions) and every phase of the run — parsing, key
// generation, each candidate, each key pass, the sliding window,
// transitive closure, and checkpoint writes — emits spans to the
// attached sinks while live counters stay readable from Metrics. A
// nil Observer costs one pointer test per run.
type (
	// Observer carries one run's tracing and metrics state; construct
	// with NewObserver.
	Observer = obs.Observer
	// TraceSpan is an in-flight span handle (nil-safe).
	TraceSpan = obs.Span
	// TraceRecord is one finished span or event as delivered to sinks.
	TraceRecord = obs.Record
	// TraceAttr is one key/value attribute of a span or event.
	TraceAttr = obs.Attr
	// TraceSink receives finished spans and events; implementations
	// must be safe for concurrent use.
	TraceSink = obs.Sink
	// TraceRing is a bounded in-memory sink keeping the most recent
	// records.
	TraceRing = obs.Ring
	// TraceJSONL streams records to a writer as JSON lines.
	TraceJSONL = obs.JSONL
	// RotatingTraceJSONL is a path-bound TraceJSONL with size-capped
	// rotation (path → path.1 → …), for long-running traces.
	RotatingTraceJSONL = obs.RotatingJSONL
	// PhaseLatencies is a sink folding every completed span into a
	// per-phase latency Histogram.
	PhaseLatencies = obs.PhaseHistograms
	// LatencyHistogram is a fixed log-bucket latency histogram; the
	// zero value is ready to use and Observe is atomic.
	LatencyHistogram = obs.Histogram
	// LatencySummary is the count/mean/p50/p90/p99/max digest of a
	// LatencyHistogram, as it appears in report.json.
	LatencySummary = obs.LatencySummary
	// RunMetrics is the live atomic counter/gauge set of a run (the
	// name Metrics is taken by the evaluation package's quality
	// metrics). When Options.SimCache is on, its SimCacheHits/Misses/
	// Evictions and DescSetsInterned counters track the similarity memo
	// layer; report.json surfaces the derived sim_cache_hit_rate.
	RunMetrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of Metrics with derived
	// rates; it marshals to JSON and renders to Prometheus text format.
	MetricsSnapshot = obs.Snapshot
	// Collector assembles a machine-readable Report from a run's spans.
	Collector = obs.Collector
	// Report is the machine-readable run summary (report.json).
	Report = obs.Report
	// CandidateReport and PassReport are the per-candidate and per-pass
	// slices of a Report.
	CandidateReport = obs.CandidateReport
	PassReport      = obs.PassReport
	// Progress renders periodic one-line run summaries to a writer,
	// adapting its cadence to whether the writer is a TTY.
	Progress = obs.Progress
)

// ReportSchema identifies the report.json layout version.
const ReportSchema = obs.ReportSchema

// NewObserver returns an enabled Observer with the given sinks
// attached. An observer without sinks still counts metrics; spans are
// only materialized once a sink is attached.
func NewObserver(sinks ...TraceSink) *Observer { return obs.New(sinks...) }

// NewTraceRing returns an in-memory sink holding the most recent
// capacity records.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewTraceJSONL returns a sink streaming every record to w as one JSON
// object per line. Call Flush (or Close) before reading the output.
func NewTraceJSONL(w io.Writer) *TraceJSONL { return obs.NewJSONL(w) }

// NewRotatingTraceJSONL opens (or appends to) a JSONL trace at path,
// rotating it whenever it would exceed maxBytes (≤0 = never) and
// keeping at most keep rotated segments.
func NewRotatingTraceJSONL(path string, maxBytes int64, keep int) (*RotatingTraceJSONL, error) {
	return obs.NewRotatingJSONL(path, maxBytes, keep)
}

// NewPhaseLatencies returns an empty per-phase latency sink; attach it
// to an Observer to collect engine phase duration histograms.
func NewPhaseLatencies() *PhaseLatencies { return obs.NewPhaseHistograms() }

// LintPrometheus validates a Prometheus text exposition the way a
// scraper would — the shared contract test for every exporter in this
// repo.
func LintPrometheus(data []byte) error { return obs.LintPrometheus(data) }

// NewCollector returns a sink that assembles a Report; attach it to an
// observer alongside (or instead of) trace sinks.
func NewCollector() *Collector { return obs.NewCollector() }

// NewProgress returns a progress printer over m writing to w; pass
// interval 0 for TTY-adaptive defaults.
func NewProgress(w io.Writer, m *RunMetrics, interval time.Duration) *Progress {
	return obs.NewProgress(w, m, interval)
}

// ParseTrace decodes records previously written by a TraceJSONL sink.
func ParseTrace(r io.Reader) ([]TraceRecord, error) { return obs.ParseJSONL(r) }

// ConfigFingerprint returns the SHA-256 fingerprint of a validated
// configuration — the identity stamped into checkpoints and run
// reports.
func ConfigFingerprint(cfg *Config) (string, error) {
	return checkpoint.ConfigFingerprint(cfg)
}

// DocumentFingerprint returns the SHA-256 fingerprint of a parsed
// document's canonical serialization.
func DocumentFingerprint(doc *Document) (string, error) {
	return checkpoint.DocumentFingerprint(doc)
}
