package sxnm

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// Checkpoint error types, re-exported from internal/checkpoint.
type (
	// CheckpointMismatchError reports a checkpoint that is intact but
	// belongs to a different configuration, document, or format
	// version; it matches ErrCheckpointMismatch via errors.Is.
	CheckpointMismatchError = checkpoint.MismatchError
	// CheckpointCorruptError reports checkpoint bytes that failed
	// checksum or structural validation; it matches
	// ErrCheckpointCorrupt via errors.Is.
	CheckpointCorruptError = checkpoint.CorruptError
)

// CheckpointFS abstracts the filesystem checkpoints live on; pass a
// custom implementation to RunCheckpointedFSContext to intercept
// checkpoint I/O (fault-injection harnesses do). OSCheckpointFS is the
// real one.
type CheckpointFS = checkpoint.FS

// OSCheckpointFS returns the real filesystem for
// RunCheckpointedFSContext.
func OSCheckpointFS() CheckpointFS { return checkpoint.OSFS() }

// Typed checkpoint conditions; match with errors.Is.
var (
	// ErrNoCheckpoint reports that the checkpoint directory holds no
	// checkpoint; Resume returns it, RunCheckpointed starts fresh.
	ErrNoCheckpoint = checkpoint.ErrNoCheckpoint
	// ErrCheckpointMismatch reports a checkpoint recorded for a
	// different configuration or document. Neither RunCheckpointed nor
	// Resume will touch it; delete the directory (or pick another) to
	// proceed.
	ErrCheckpointMismatch = checkpoint.ErrMismatch
	// ErrCheckpointCorrupt reports damaged checkpoint bytes — a torn
	// write or bit rot. RunCheckpointed discards it and restarts clean;
	// Resume refuses with this error.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
)

// RunCheckpointed is Run with durable progress in the directory dir:
// after key generation and after each candidate completes, the state
// is persisted crash-safely, so an interrupted or crashed run invoked
// again with the same config, document, and directory resumes instead
// of restarting. When dir already holds a valid matching checkpoint,
// the run continues from it; when it holds nothing, or a corrupt
// remnant of a crash, a fresh run starts; when it holds a checkpoint
// of a *different* config or document, the run refuses with
// ErrCheckpointMismatch rather than silently mixing state.
func (d *Detector) RunCheckpointed(doc *Document, dir string) (*Result, error) {
	return d.RunCheckpointedContext(context.Background(), doc, dir)
}

// RunCheckpointedContext is RunCheckpointed under a context and the
// Detector's Limits. An interrupted run (cancellation, deadline,
// limit breach) flushes its progress to dir before returning the
// partial Result and the typed cause, so a later identical call picks
// up where it stopped.
func (d *Detector) RunCheckpointedContext(ctx context.Context, doc *Document, dir string) (*Result, error) {
	return d.RunCheckpointedFSContext(ctx, doc, checkpoint.OSFS(), dir)
}

// RunCheckpointedFSContext is RunCheckpointedContext with checkpoint
// I/O routed through fsys instead of the real filesystem — the seam
// fault-injection harnesses (and the daemon's kill-the-run-at-every-
// step tests) use to fail or truncate individual checkpoint writes.
func (d *Detector) RunCheckpointedFSContext(ctx context.Context, doc *Document, fsys CheckpointFS, dir string) (*Result, error) {
	cfgFP, docFP, err := d.fingerprints(doc)
	if err != nil {
		return nil, err
	}
	cp, st, err := checkpoint.Load(fsys, dir, d.cfg, cfgFP, docFP)
	switch {
	case err == nil:
		return d.continueFrom(ctx, doc, cp, st)
	case errors.Is(err, ErrNoCheckpoint), errors.Is(err, ErrCheckpointCorrupt):
		cp, err = checkpoint.Create(fsys, dir, cfgFP, docFP)
		if err != nil {
			return nil, fmt.Errorf("sxnm: %w", err)
		}
		return d.finishRun(cp)(core.RunContext(ctx, doc, d.cfg, d.checkpointedOpts(cp, nil)))
	default:
		return nil, fmt.Errorf("sxnm: %w", err)
	}
}

// Resume continues the run checkpointed in dir, strictly: unlike
// RunCheckpointed it never starts over, failing with ErrNoCheckpoint,
// ErrCheckpointMismatch, or ErrCheckpointCorrupt when dir holds
// nothing resumable for this config and document.
func (d *Detector) Resume(doc *Document, dir string) (*Result, error) {
	return d.ResumeContext(context.Background(), doc, dir)
}

// ResumeContext is Resume under a context and the Detector's Limits.
func (d *Detector) ResumeContext(ctx context.Context, doc *Document, dir string) (*Result, error) {
	cfgFP, docFP, err := d.fingerprints(doc)
	if err != nil {
		return nil, err
	}
	cp, st, err := checkpoint.Load(checkpoint.OSFS(), dir, d.cfg, cfgFP, docFP)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %w", err)
	}
	return d.continueFrom(ctx, doc, cp, st)
}

// continueFrom resumes a loaded checkpoint: key generation reruns only
// when it never completed; otherwise detection continues over the
// recovered GK tables, completed candidates' clusters, and pass-level
// progress.
func (d *Detector) continueFrom(ctx context.Context, doc *Document, cp *checkpoint.Dir, st *checkpoint.State) (*Result, error) {
	if st.KeyGen == nil {
		return d.finishRun(cp)(core.RunContext(ctx, doc, d.cfg, d.checkpointedOpts(cp, nil)))
	}
	return d.finishRun(cp)(core.DetectContext(ctx, st.KeyGen, d.cfg, d.checkpointedOpts(cp, st.ResumeState())))
}

// checkpointedOpts clones the Detector's options with the checkpoint
// hooks attached; the Detector's observer, when set, also accounts
// checkpoint writes.
func (d *Detector) checkpointedOpts(cp *checkpoint.Dir, rs *core.ResumeState) Options {
	cp.SetObserver(d.opts.Observer)
	opts := d.opts
	opts.Checkpointer = cp
	opts.Resume = rs
	return opts
}

// finishRun marks the checkpoint done after an uninterrupted run;
// interruptions pass through with their partial Result, leaving the
// checkpoint resumable.
func (d *Detector) finishRun(cp *checkpoint.Dir) func(*Result, error) (*Result, error) {
	return func(res *Result, err error) (*Result, error) {
		if err != nil {
			return res, err
		}
		if err := cp.Finish(); err != nil {
			return res, fmt.Errorf("sxnm: %w", err)
		}
		return res, nil
	}
}

func (d *Detector) fingerprints(doc *Document) (string, string, error) {
	cfgFP, err := checkpoint.ConfigFingerprint(d.cfg)
	if err != nil {
		return "", "", fmt.Errorf("sxnm: %w", err)
	}
	docFP, err := checkpoint.DocumentFingerprint(doc)
	if err != nil {
		return "", "", fmt.Errorf("sxnm: %w", err)
	}
	return cfgFP, docFP, nil
}
