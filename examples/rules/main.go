// Rules: the equational-theory extension of the paper's outlook
// (Sec. 5). A domain expert replaces the single-threshold
// classification with a boolean rule over per-field similarities —
// here: "two movies are duplicates when their titles nearly match AND
// (their years agree OR a year is missing), or when they share most of
// their cast".
//
// Run with: go run ./examples/rules
package main

import (
	"fmt"
	"log"

	sxnm "repro"
)

const data = `
<movie_database>
  <movies>
    <movie year="1999">
      <title>The Matrix</title>
      <people><person>Keanu Reeves</person><person>Don Davis</person></people>
    </movie>
    <movie>
      <title>The Matrrix</title>
      <people><person>Keanu Reeves</person><person>Don Davis</person></people>
    </movie>
    <movie year="1994">
      <title>The Matrix</title>
      <people><person>Someone Else</person></people>
    </movie>
    <movie year="1998">
      <title>Mask of Zorro</title>
      <people><person>Antonio Banderas</person></people>
    </movie>
  </movies>
</movie_database>`

func main() {
	cfg := &sxnm.Config{
		Candidates: []sxnm.Candidate{
			{
				Name:  "movie",
				XPath: "movie_database/movies/movie",
				Paths: []sxnm.PathDef{
					{ID: 1, RelPath: "title/text()"},
					{ID: 2, RelPath: "@year"},
				},
				OD: []sxnm.ODEntry{
					{PathID: 1, Relevance: 0.8},
					{PathID: 2, Relevance: 0.2, SimFunc: "year"},
				},
				Keys: []sxnm.KeyDef{
					{Name: "title", Parts: []sxnm.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K5"}}},
				},
				Threshold: 0.8,
				Window:    4,
			},
			{
				Name:  "person",
				XPath: "movie_database/movies/movie/people/person",
				Paths: []sxnm.PathDef{{ID: 1, RelPath: "text()"}},
				OD:    []sxnm.ODEntry{{PathID: 1, Relevance: 1}},
				Keys: []sxnm.KeyDef{
					{Name: "name", Parts: []sxnm.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
				},
				Threshold: 0.85,
				Window:    4,
			},
		},
	}

	// Movie 3 shares movie 1's title but has a different year and a
	// disjoint cast; movie 2 is a true duplicate of movie 1 with a
	// typo'd title and a missing year. A flat OD threshold merges the
	// wrong pair (identical titles dominate) and misses the right one
	// (the missing year drags the weighted sum down). The equational
	// rule separates the concerns: near-identical titles only count
	// together with agreeing years, and shared casts are an
	// independent reason to merge.
	const movieRule = `(sim(1) >= 0.9 and sim(2) >= 0.8) or desc >= 0.6`

	rs, err := sxnm.NewRuleSet(cfg, map[string]string{"movie": movieRule})
	if err != nil {
		log.Fatal(err)
	}

	doc, err := sxnm.ParseXMLString(data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rule:", movieRule)
	fmt.Println()

	show := func(label string, res *sxnm.Result) {
		idx := doc.IndexByID()
		fmt.Printf("%s:\n", label)
		groups := res.Clusters["movie"].NonSingletons()
		if len(groups) == 0 {
			fmt.Println("  no duplicates")
		}
		for _, c := range groups {
			fmt.Printf("  cluster %d:\n", c.ID)
			for _, eid := range c.Members {
				n := idx[eid]
				year, _ := n.Attr("year")
				fmt.Printf("    %-14s year=%q\n", n.FirstChildElement("title").Text(), year)
			}
		}
		fmt.Println()
	}

	flat, err := sxnm.NewWithOptions(cfg, sxnm.Options{DisableDescendants: true})
	if err != nil {
		log.Fatal(err)
	}
	plain, err := flat.Run(doc)
	if err != nil {
		log.Fatal(err)
	}
	show("flat OD threshold (no descendants)", plain)

	ruled, err := sxnm.NewWithOptions(cfg, rs.Options())
	if err != nil {
		log.Fatal(err)
	}
	res, err := ruled.Run(doc)
	if err != nil {
		log.Fatal(err)
	}
	show("equational theory rule", res)
}
