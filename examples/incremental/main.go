// Incremental: the incremental SNM variant (Sec. 2.2) for repeatedly
// updated data. Movie batches arrive one at a time; each batch is
// merged into the already-deduplicated sorted key lists, and only
// windows containing new rows are compared — far cheaper than
// re-running SXNM from scratch after every update.
//
// Run with: go run ./examples/incremental [-batches 4] [-n 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/gen/dirty"
	"repro/internal/gen/toxgene"
)

func main() {
	batches := flag.Int("batches", 4, "number of arriving batches")
	n := flag.Int("n", 400, "clean movies per batch")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	cfg := config.DataSet1(5)
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	inc, err := baseline.NewIncremental(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rerunEveryBatch := 0
	for b := 0; b < *batches; b++ {
		clean := toxgene.Movies(*n, *seed+int64(b)*100)
		res, err := dirty.Pollute(clean, []dirty.Spec{{
			Path:   dataset.MoviePath,
			Prob:   0.25,
			Errors: dirty.ErrorModel{MinTypos: 1, MaxTypos: 2, TypoProb: 0.6},
		}}, *seed+int64(b)*100+1)
		if err != nil {
			log.Fatal(err)
		}
		before := inc.Comparisons
		if err := inc.Add(res.Doc); err != nil {
			log.Fatal(err)
		}
		cs := inc.Clusters("movie")

		// The alternative to incremental maintenance is re-running SXNM
		// from scratch over everything after each batch: approximately
		// rows × (window−1) × keys window comparisons per rerun.
		rows := inc.Rows("movie")
		w := cfg.Candidate("movie").Window
		rerunEveryBatch += rows * (w - 1) * len(cfg.Candidate("movie").Keys)

		fmt.Printf("batch %d: +%d rows (total %d)  incremental comparisons +%d  duplicate groups %d\n",
			b+1, res.Doc.Stats().Elements, rows, inc.Comparisons-before, len(cs.NonSingletons()))
	}
	fmt.Printf("\ncumulative incremental comparisons:            %d\n", inc.Comparisons)
	fmt.Printf("re-running from scratch after every batch: ~%d window comparisons\n", rerunEveryBatch)
}
