// CRM: the classical customer-deduplication scenario the paper's
// introduction motivates. Customers are nested XML objects — a name,
// an address, and a list of orders — and duplicates arise from retyped
// registrations. The bottom-up pass first deduplicates orders (which
// carry stable order numbers), then uses shared-order evidence to
// merge customer records whose names and addresses were typed
// differently, exactly the movies-nesting-actors argument transplanted
// to CRM.
//
// Run with: go run ./examples/crm
package main

import (
	"fmt"
	"log"

	sxnm "repro"
)

const customers = `
<crm>
  <customers>
    <customer>
      <name>Johnathan Smith</name>
      <address>12 Harbour Lane, Springfield</address>
      <phone>555-0199</phone>
      <orders>
        <order><number>ORD-88231</number><item>Espresso Machine</item></order>
        <order><number>ORD-88507</number><item>Grinder</item></order>
      </orders>
    </customer>
    <customer>
      <name>Jonathan Smith</name>
      <address>12 Harbor Ln, Springfield</address>
      <orders>
        <order><number>ORD-88231</number><item>Espresso Machine</item></order>
        <order><number>ORD-88507</number><item>Grindr</item></order>
        <order><number>ORD-90114</number><item>Descaler</item></order>
      </orders>
    </customer>
    <customer>
      <name>John Smithee</name>
      <address>99 Mill Road, Shelbyville</address>
      <orders>
        <order><number>ORD-70001</number><item>Kettle</item></order>
      </orders>
    </customer>
    <customer>
      <name>Maria Alvarez</name>
      <address>3 Calle Mayor, Valencia</address>
      <orders>
        <order><number>ORD-55120</number><item>Toaster</item></order>
      </orders>
    </customer>
  </customers>
</crm>`

func main() {
	cfg := &sxnm.Config{
		Candidates: []sxnm.Candidate{
			{
				Name:  "customer",
				XPath: "crm/customers/customer",
				Paths: []sxnm.PathDef{
					{ID: 1, RelPath: "name/text()"},
					{ID: 2, RelPath: "address/text()"},
					{ID: 3, RelPath: "phone/text()"},
				},
				OD: []sxnm.ODEntry{
					{PathID: 1, Relevance: 0.5, SimFunc: "mongeelkan"},
					{PathID: 2, Relevance: 0.4, SimFunc: "trigram"},
					{PathID: 3, Relevance: 0.1, SimFunc: "exact"},
				},
				Keys: []sxnm.KeyDef{
					// Phonetic surname key: last-name typos sort together.
					{Name: "soundex", Parts: []sxnm.KeyPart{{PathID: 1, Order: 1, Pattern: "S"}}},
					{Name: "address", Parts: []sxnm.KeyPart{{PathID: 2, Order: 1, Pattern: "D1,D2,K1-K4"}}},
				},
				Rule:          sxnm.RuleEither,
				ODThreshold:   0.8,
				DescThreshold: 0.5,
				Window:        3,
			},
			{
				Name:  "order",
				XPath: "crm/customers/customer/orders/order",
				Paths: []sxnm.PathDef{
					{ID: 1, RelPath: "number/text()"},
					{ID: 2, RelPath: "item/text()"},
				},
				OD: []sxnm.ODEntry{
					{PathID: 1, Relevance: 0.7},
					{PathID: 2, Relevance: 0.3},
				},
				Keys: []sxnm.KeyDef{
					{Name: "number", Parts: []sxnm.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C8"}}},
				},
				Threshold: 0.9,
				Window:    3,
			},
		},
	}

	det, err := sxnm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := sxnm.ParseXMLString(customers)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		log.Fatal(err)
	}

	idx := doc.IndexByID()
	fmt.Println("customer duplicate groups (via phonetic keys + shared orders):")
	for _, c := range res.Clusters["customer"].NonSingletons() {
		fmt.Printf("  cluster %d:\n", c.ID)
		for _, eid := range c.Members {
			n := idx[eid]
			fmt.Printf("    %-18s %s\n",
				n.FirstChildElement("name").Text(),
				n.FirstChildElement("address").Text())
		}
	}
	fmt.Printf("\norder clusters: %d orders -> %d distinct orders\n",
		res.Clusters["order"].Elements(), res.Clusters["order"].Len())

	fused := sxnm.Fuse(doc, res)
	kept := fused.ElementsByPath("crm/customers/customer")
	fmt.Printf("after fusion: %d customer records (was %d)\n",
		len(kept), len(doc.ElementsByPath("crm/customers/customer")))
	for _, c := range kept {
		phone := "-"
		if p := c.FirstChildElement("phone"); p != nil {
			phone = p.Text()
		}
		fmt.Printf("  %-18s phone=%s orders=%d\n",
			c.FirstChildElement("name").Text(), phone,
			len(c.FirstChildElement("orders").ChildElements("order")))
	}
}
