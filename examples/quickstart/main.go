// Quickstart: detect duplicate movies in a small in-memory XML
// document with an in-code configuration, print the clusters, and
// write a de-duplicated copy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	sxnm "repro"
)

const data = `
<movie_database>
  <movies>
    <movie year="1999">
      <title>The Matrix</title>
      <people><person>Keanu Reeves</person><person>Carrie-Anne Moss</person></people>
    </movie>
    <movie year="1999">
      <title>Matrix, The</title>
      <people><person>Keanu Reves</person><person>Carrie-Anne Moss</person></people>
    </movie>
    <movie year="1998">
      <title>The Mask of Zorro</title>
      <people><person>Antonio Banderas</person></people>
    </movie>
    <movie year="1999">
      <title>The Matrrix</title>
      <people><person>Keanu Reeves</person></people>
    </movie>
  </movies>
</movie_database>`

func main() {
	// Configuration in code: one candidate (movie) whose key is the
	// first five consonants of the title, compared on title text (the
	// paper's Table 1 style, simplified). A second candidate (person)
	// is deduplicated first, bottom-up, so movie similarity can also
	// use shared-actor information.
	cfg := &sxnm.Config{
		Candidates: []sxnm.Candidate{
			{
				Name:  "movie",
				XPath: "movie_database/movies/movie",
				Paths: []sxnm.PathDef{
					{ID: 1, RelPath: "title/text()"},
					{ID: 2, RelPath: "@year"},
				},
				OD: []sxnm.ODEntry{
					{PathID: 1, Relevance: 0.8},
					{PathID: 2, Relevance: 0.2, SimFunc: "year"},
				},
				Keys: []sxnm.KeyDef{
					{Name: "title", Parts: []sxnm.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K5"}}},
					{Name: "year", Parts: []sxnm.KeyPart{
						{PathID: 2, Order: 1, Pattern: "D3,D4"},
						{PathID: 1, Order: 2, Pattern: "K1,K2"},
					}},
				},
				Rule:          sxnm.RuleEither,
				ODThreshold:   0.7,
				DescThreshold: 0.4,
				Window:        3,
			},
			{
				Name:  "person",
				XPath: "movie_database/movies/movie/people/person",
				Paths: []sxnm.PathDef{{ID: 1, RelPath: "text()"}},
				OD:    []sxnm.ODEntry{{PathID: 1, Relevance: 1}},
				Keys: []sxnm.KeyDef{
					{Name: "name", Parts: []sxnm.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
				},
				Threshold: 0.85,
				Window:    3,
			},
		},
	}

	det, err := sxnm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := sxnm.ParseXMLString(data)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		log.Fatal(err)
	}

	idx := doc.IndexByID()
	for _, s := range sxnm.Summarize(res) {
		fmt.Printf("%s: %d elements in %d clusters (%d duplicate groups)\n",
			s.Candidate, s.Elements, s.Clusters, s.NonSingleton)
		for _, c := range res.Clusters[s.Candidate].NonSingletons() {
			fmt.Printf("  duplicates (cluster %d):\n", c.ID)
			for _, eid := range c.Members {
				fmt.Printf("    %s\n", idx[eid].DeepText())
			}
		}
	}

	clean := sxnm.Deduplicate(doc, res)
	fmt.Println("\nde-duplicated document:")
	if err := clean.Write(os.Stdout, sxnm.WriteOptions{Indent: "  "}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
