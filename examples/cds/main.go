// CDs: the paper's Data set 2 scenario, demonstrating the value of
// bottom-up descendant similarity. A FreeDB-like CD corpus with one
// generated duplicate per disc is deduplicated twice: once using only
// disc object descriptions (did, artist, title) and once additionally
// using the already-deduplicated <tracks>/<title> clusters, the
// paper's Experiment set 3 headline.
//
// Run with: go run ./examples/cds [-n 500] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	n := flag.Int("n", 500, "clean disc count (the paper uses 500)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	doc, err := dataset.DataSet2(dataset.CDs2Options{Discs: *n, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data set 2: %d clean discs + %d duplicates (one per disc)\n\n", *n, *n)

	run := func(label string, odOnly bool) {
		cfg := config.DataSet2(4)
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(doc, cfg, core.Options{DisableDescendants: odOnly})
		if err != nil {
			log.Fatal(err)
		}
		m := eval.PairwiseMetrics(gold, res.Clusters["disc"])
		fmt.Printf("%-34s %s\n", label, m)
		if !odOnly {
			tracks := res.Clusters["title"]
			fmt.Printf("%-34s track titles: %d elements -> %d clusters\n", "",
				tracks.Elements(), tracks.Len())
		}
	}
	run("object description only", true)
	run("with <tracks>/<title> descendants", false)

	fmt.Println("\nThe descendant run recovers duplicate discs whose artist or")
	fmt.Println("title were mangled beyond OD recognition but whose track lists")
	fmt.Println("still overlap — the movies-nesting-actors argument of Sec. 2.")
}
