// Movies: the paper's Data set 1 scenario end to end. Generates an
// artificial movie database (ToXGene substitute), pollutes it with
// duplicates (Dirty XML Data Generator substitute), runs SXNM with the
// Table 3(a) configuration, and evaluates recall/precision/f-measure
// against the planted gold identities — once per key (single-pass) and
// once with all keys (multi-pass).
//
// Run with: go run ./examples/movies [-n 2000] [-window 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	n := flag.Int("n", 2000, "clean movie count")
	window := flag.Int("window", 8, "sliding window size")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	doc, planted, err := dataset.DataSet1(dataset.Movies1Options{Movies: *n, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	gold, err := eval.BuildGold(doc, dataset.MoviePath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data set 1: %d clean movies + %d planted duplicates\n\n",
		*n, planted)

	nKeys := len(config.DataSet1(0).Candidates[0].Keys)
	for pass := 0; pass <= nKeys; pass++ {
		cfg := config.DataSet1(*window)
		label := "multi-pass (all keys)"
		if pass < nKeys {
			label = fmt.Sprintf("single-pass %s", cfg.Candidates[0].Keys[pass].Name)
			cfg.KeepKeys("movie", pass)
		}
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(doc, cfg, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		m := eval.PairwiseMetrics(gold, res.Clusters["movie"])
		st := res.Stats.Candidates["movie"]
		fmt.Printf("%-28s %s\n", label, m)
		fmt.Printf("%-28s comparisons=%d  KG=%v SW=%v TC=%v\n\n", "",
			st.Comparisons, res.Stats.KeyGen, st.SlidingWindow, st.TransitiveClosure)
	}
}
