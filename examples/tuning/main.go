// Tuning: calibrate thresholds and windows on a labelled sample — the
// paper's Sec. 3.4 guidance ("performing duplicate detection both
// manually and automatically on a small sample can help determine
// suitable parameters values") and the Sec. 5 plan to learn thresholds.
//
// A small labelled sample is generated, the movie threshold and window
// are swept, and the best setting is applied and validated against a
// larger, fresh data set.
//
// Run with: go run ./examples/tuning [-sample 300] [-test 1500]
package main

import (
	"flag"
	"fmt"
	"log"

	sxnm "repro"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	sampleN := flag.Int("sample", 300, "labelled sample size (clean movies)")
	testN := flag.Int("test", 1500, "held-out evaluation size")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	sample, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: *sampleN, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.DataSet1(4)
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := sxnm.Tune(sample, cfg, sxnm.TuneOptions{
		Candidate: "movie",
		Windows:   []int{4, 8, 12},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d settings on a %d-movie sample\n\n", len(res.Settings), *sampleN)
	fmt.Println("threshold  window  precision  recall  f-measure")
	for _, s := range res.Settings {
		marker := " "
		if s == res.Best {
			marker = "*"
		}
		fmt.Printf("%s %.2f      %-6d  %.3f      %.3f   %.3f\n",
			marker, s.Threshold, s.Window, s.Metrics.Precision, s.Metrics.Recall, s.Metrics.F1)
	}
	fmt.Printf("\nbest: threshold %.2f, window %d (sample F=%.3f)\n",
		res.Best.Threshold, res.Best.Window, res.Best.Metrics.F1)

	// Apply and evaluate on held-out data.
	tuned := config.DataSet1(4)
	if err := tuned.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := sxnm.ApplyTuned(tuned, "movie", res.Best); err != nil {
		log.Fatal(err)
	}
	test, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: *testN, Seed: *seed + 1000})
	if err != nil {
		log.Fatal(err)
	}
	gold, err := eval.BuildGold(test, dataset.MoviePath)
	if err != nil {
		log.Fatal(err)
	}
	run, err := core.Run(test, tuned, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := eval.PairwiseMetrics(gold, run.Clusters["movie"])
	fmt.Printf("held-out evaluation on %d movies: %s\n", *testN, m)
}
