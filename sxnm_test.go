package sxnm

import (
	"os"
	"strings"
	"testing"
)

const demoConfig = `
<sxnm-config>
  <candidate name="movie" xpath="movie_database/movies/movie" window="5" threshold="0.8">
    <path id="1" relPath="title/text()"/>
    <od pid="1" relevance="1"/>
    <key name="title"><part pid="1" order="1" pattern="K1-K5"/></key>
  </candidate>
  <candidate name="person" xpath="movie_database/movies/movie/people/person" window="5" threshold="0.85">
    <path id="1" relPath="text()"/>
    <od pid="1" relevance="1"/>
    <key name="name"><part pid="1" order="1" pattern="C1-C6"/></key>
  </candidate>
</sxnm-config>`

const demoXML = `
<movie_database>
  <movies>
    <movie><title>Silent River</title>
      <people><person>Keanu Reeves</person><person>Don Davis</person></people>
    </movie>
    <movie><title>Silnt River</title>
      <people><person>Keanu Reves</person><person>Don Davis</person></people>
    </movie>
    <movie><title>Broken Storm</title>
      <people><person>Uma Thurman</person></people>
    </movie>
  </movies>
</movie_database>`

func demoDetector(t *testing.T) *Detector {
	t.Helper()
	cfg, err := LoadConfig(strings.NewReader(demoConfig))
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestEndToEndFacade(t *testing.T) {
	det := demoDetector(t)
	res, err := det.RunReader(strings.NewReader(demoXML))
	if err != nil {
		t.Fatal(err)
	}
	movies := res.Clusters["movie"]
	if movies == nil {
		t.Fatal("no movie clusters")
	}
	dups := movies.NonSingletons()
	if len(dups) != 1 || len(dups[0].Members) != 2 {
		t.Fatalf("movie clusters:\n%s", movies)
	}
	persons := res.Clusters["person"]
	if got := len(persons.NonSingletons()); got != 2 {
		t.Fatalf("person duplicate clusters = %d, want 2:\n%s", got, persons)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(&Config{}); err == nil {
		t.Fatal("empty config must fail validation")
	}
}

func TestNewWithOptions(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(demoConfig))
	if err != nil {
		t.Fatal(err)
	}
	observed := 0
	det, err := NewWithOptions(cfg, Options{
		PairObserver: func(PairObservation) { observed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.RunReader(strings.NewReader(demoXML)); err != nil {
		t.Fatal(err)
	}
	if observed == 0 {
		t.Error("pair observer never invoked")
	}
}

func TestDetectorConfigAccessor(t *testing.T) {
	det := demoDetector(t)
	if det.Config().Candidate("movie") == nil {
		t.Error("config accessor broken")
	}
}

func TestRunFileAndParseFile(t *testing.T) {
	dir := t.TempDir()
	xmlPath := dir + "/data.xml"
	cfgPath := dir + "/config.xml"
	if err := writeFile(xmlPath, demoXML); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(cfgPath, demoConfig); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfigFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.RunFile(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters["movie"].NonSingletons()) != 1 {
		t.Error("file-based run found wrong duplicates")
	}
	if _, err := det.RunFile(dir + "/absent.xml"); err == nil {
		t.Error("absent file should fail")
	}
	if _, err := LoadConfigFile(dir + "/absent.xml"); err == nil {
		t.Error("absent config should fail")
	}
}

func TestRunReaderBadXML(t *testing.T) {
	det := demoDetector(t)
	if _, err := det.RunReader(strings.NewReader("not xml <")); err == nil {
		t.Error("bad xml should fail")
	}
}

func TestDeduplicate(t *testing.T) {
	det := demoDetector(t)
	doc, err := ParseXMLString(demoXML)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	clean := Deduplicate(doc, res)
	movies := clean.ElementsByPath("movie_database/movies/movie")
	if len(movies) != 2 {
		t.Fatalf("deduplicated movie count = %d, want 2", len(movies))
	}
	// The original document is untouched.
	if got := len(doc.ElementsByPath("movie_database/movies/movie")); got != 3 {
		t.Errorf("original mutated: %d movies", got)
	}
	// Persons within the removed movie are gone; the surviving movie
	// keeps its persons.
	persons := clean.ElementsByPath("movie_database/movies/movie/people/person")
	if len(persons) != 3 {
		t.Errorf("deduplicated person count = %d, want 3", len(persons))
	}
}

func TestDeduplicateKeepsMostComplete(t *testing.T) {
	// Second duplicate carries an extra review (a non-candidate child):
	// it is the more complete record and should be the survivor.
	xmlStr := `
<movie_database>
  <movies>
    <movie><title>Silent River</title>
      <people><person>Keanu Reeves</person></people>
    </movie>
    <movie><title>Silent River!</title>
      <people><person>Keanu Reeves</person></people>
      <review>A stunning achievement in modern cinema.</review>
    </movie>
  </movies>
</movie_database>`
	det := demoDetector(t)
	doc, err := ParseXMLString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	clean := Deduplicate(doc, res)
	movies := clean.ElementsByPath("movie_database/movies/movie")
	if len(movies) != 1 {
		t.Fatalf("movie count = %d, want 1", len(movies))
	}
	if movies[0].FirstChildElement("review") == nil {
		t.Error("survivor should be the richer record carrying the review")
	}
}

func TestSummarize(t *testing.T) {
	det := demoDetector(t)
	res, err := det.RunReader(strings.NewReader(demoXML))
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(res)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	if sums[0].Candidate != "movie" || sums[1].Candidate != "person" {
		t.Errorf("summary order: %+v", sums)
	}
	if sums[0].Elements != 3 || sums[0].NonSingleton != 1 || sums[0].Pairs != 1 {
		t.Errorf("movie summary: %+v", sums[0])
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
