package sxnm

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/eval"
)

// Integration invariants over the full pipeline at moderate scale.

func dirtyMovies(t *testing.T, n int, seed int64) *Document {
	t.Helper()
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func runDS1(t *testing.T, doc *Document, window int, opts Options) *Result {
	t.Helper()
	det, err := NewWithOptions(config.DataSet1(window), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeterministicRuns(t *testing.T) {
	doc := dirtyMovies(t, 200, 17)
	a := runDS1(t, doc, 6, Options{})
	b := runDS1(t, doc, 6, Options{})
	if a.Clusters["movie"].String() != b.Clusters["movie"].String() {
		t.Error("same input produced different clusters")
	}
	if a.Stats.Comparisons != b.Stats.Comparisons {
		t.Errorf("comparison counts differ: %d vs %d", a.Stats.Comparisons, b.Stats.Comparisons)
	}
}

// Recall is monotone in the window size: a larger window compares a
// superset of pairs, and transitive closure only merges further.
func TestRecallMonotoneInWindow(t *testing.T) {
	doc := dirtyMovies(t, 300, 23)
	gold, err := eval.BuildGold(doc, dataset.MoviePath)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, w := range []int{2, 4, 8, 16, 32} {
		res := runDS1(t, doc, w, Options{})
		m := eval.PairwiseMetrics(gold, res.Clusters["movie"])
		if m.Recall < prev-1e-9 {
			t.Errorf("recall dropped from %.4f to %.4f at window %d", prev, m.Recall, w)
		}
		prev = m.Recall
	}
}

// Multi-pass detections are a superset of every single pass.
func TestMultiPassSupersetOfSinglePass(t *testing.T) {
	doc := dirtyMovies(t, 250, 29)
	mp := runDS1(t, doc, 6, Options{})
	mpPairs := map[Pair]bool{}
	for _, p := range mp.Clusters["movie"].DuplicatePairs() {
		mpPairs[p] = true
	}
	// Compare the raw detected pairs before closure? The closure can
	// only add pairs, so subset on closed pairs is still implied for
	// each pass alone.
	for key := 0; key < 3; key++ {
		cfg := config.DataSet1(6)
		cfg.KeepKeys("movie", key)
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.Run(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Clusters["movie"].DuplicatePairs() {
			if !mpPairs[p] {
				t.Errorf("key %d pair %v missing from multi-pass closure", key+1, p)
			}
		}
	}
}

// Deduplicating the output and re-running finds (nearly) nothing: the
// pipeline is idempotent on its own fixed point.
func TestDeduplicateIdempotent(t *testing.T) {
	doc := dirtyMovies(t, 250, 31)
	res := runDS1(t, doc, 12, Options{})
	before := len(res.Clusters["movie"].NonSingletons())
	if before == 0 {
		t.Fatal("no duplicates found in dirty data")
	}
	clean := Deduplicate(doc, res)
	res2 := runDS1(t, clean, 12, Options{})
	after := len(res2.Clusters["movie"].NonSingletons())
	if after > before/10 {
		t.Errorf("second pass still finds %d groups (first pass %d)", after, before)
	}
}

// The filter and parallel options never change detection outcomes.
func TestOptionEquivalenceOnRealData(t *testing.T) {
	doc := dirtyMovies(t, 300, 37)
	base := runDS1(t, doc, 8, Options{})
	for name, opts := range map[string]Options{
		"filter":   {UseFilter: true},
		"parallel": {Parallel: true},
		"both":     {UseFilter: true, Parallel: true},
	} {
		got := runDS1(t, doc, 8, opts)
		if got.Clusters["movie"].String() != base.Clusters["movie"].String() {
			t.Errorf("%s: clusters differ from baseline", name)
		}
	}
}

// Gold identities survive the whole pipeline: every cluster the
// detector builds on clean (undirtied) data is a singleton.
func TestCleanDataYieldsNoDuplicates(t *testing.T) {
	det, err := New(config.DataSet1(8))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseXMLString(cleanMoviesXML(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Clusters["movie"].NonSingletons()); got != 0 {
		t.Errorf("clean data produced %d duplicate groups:\n%s", got, res.Clusters["movie"])
	}
}

func cleanMoviesXML(t *testing.T) string {
	t.Helper()
	// A handful of hand-picked distinct movies.
	return `<movie_database><movies>
	  <movie year="1999" length="136"><title>Silent River</title></movie>
	  <movie year="1984" length="120"><title>Golden Harbor</title></movie>
	  <movie year="2001" length="95"><title>Broken Thunder</title></movie>
	  <movie year="1975" length="140"><title>Crimson Voyage</title></movie>
	</movies></movie_database>`
}
