package sxnm

import (
	"sort"

	"repro/internal/xmltree"
)

// Fuse produces a de-duplicated copy of the document like Deduplicate,
// but instead of discarding the non-representative cluster members it
// merges their data into the surviving element — the "more
// sophisticated approaches perform data fusion by resolving conflicts
// among the different representations" of the paper's Sec. 3.4.
//
// The fusion policy is conservative and deterministic:
//
//   - attributes: the representative keeps its own values; attributes
//     it lacks are copied from the other members (first member in
//     document order wins);
//   - child elements: for every child element name the representative
//     keeps its own children; names it lacks entirely are copied from
//     the first member that has them (subtrees are cloned);
//   - text: the representative's text is kept (it was chosen as the
//     most complete record).
//
// Candidates are processed top-down as in Deduplicate.
func Fuse(doc *Document, res *Result) *Document {
	out := xmltree.NewDocument(doc.Root.Clone())
	index := out.IndexByID()

	names := make([]string, 0, len(res.Clusters))
	for name := range res.Clusters {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		di := candidateDepth(res, names[i])
		dj := candidateDepth(res, names[j])
		if di != dj {
			return di < dj
		}
		return names[i] < names[j]
	})

	for _, name := range names {
		cs := res.Clusters[name]
		for _, c := range cs.NonSingletons() {
			var alive []*xmltree.Node
			for _, eid := range c.Members {
				if n := index[eid]; n != nil && stillAttached(n, out.Root) {
					alive = append(alive, n)
				}
			}
			if len(alive) <= 1 {
				continue
			}
			rep := chooseRepresentative(alive)
			for _, n := range alive {
				if n == rep {
					continue
				}
				mergeInto(rep, n)
				if n.Parent != nil {
					n.Parent.RemoveChild(n)
				}
			}
		}
	}
	out.Renumber()
	return out
}

// mergeInto copies data from donor into rep without overwriting
// anything rep already has.
func mergeInto(rep, donor *xmltree.Node) {
	for _, a := range donor.Attrs {
		if _, ok := rep.Attr(a.Name); !ok {
			rep.SetAttr(a.Name, a.Value)
		}
	}
	repChildNames := map[string]bool{}
	for _, c := range rep.Children {
		if c.Kind == xmltree.ElementNode {
			repChildNames[c.Name] = true
		}
	}
	for _, c := range donor.Children {
		if c.Kind == xmltree.ElementNode && !repChildNames[c.Name] {
			rep.AppendChild(c.Clone())
			repChildNames[c.Name] = true
		}
	}
}
