package sxnm

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Bench-regression guard for the window-sweep hot path. Two modes,
// both off by default so `go test ./...` stays fast and deterministic:
//
//	SXNM_BENCH_RECORD=1  go test -run TestBenchGuard .   # (make bench-baseline)
//	    measures every windowSweepCases entry and writes the ns/op map
//	    under the "bench_ns_per_op" key of BENCH_sxnm.json, preserving
//	    the rest of the committed run report.
//	SXNM_BENCH_CHECK=1   go test -run TestBenchGuard .   # (make bench-check)
//	    re-measures and fails if any case regresses more than 15%
//	    against the recorded baseline. On machines with ≥4 usable CPUs
//	    it additionally requires the 4-worker sweep to beat the
//	    sequential one by ≥1.5× — on fewer cores that bar is physically
//	    unreachable, so only the per-case regression check applies.
//	SXNM_BENCH_MERGE=report.json go test -run TestBenchGuard .   # (make bench)
//	    replaces the run-report portion of BENCH_sxnm.json with the
//	    given freshly generated report while PRESERVING the committed
//	    bench_ns_per_op baselines. `make bench` regenerates the report
//	    through this mode; without it, rewriting the report wholesale
//	    silently destroyed the ns/op baselines.
const (
	benchBaselineFile = "BENCH_sxnm.json"
	benchNsKey        = "bench_ns_per_op"
	benchTolerance    = 0.15
	// The spilled cases are disk-bound, and filesystem latency jitters
	// far more run-to-run than the CPU-bound sweeps, so they get a
	// looser drift bar.
	benchSpillTolerance = 0.35
	benchMinSpeedup     = 1.5
	// The threshold-aware filter is CPU-bound and deterministic, so it
	// gets a hard floor: the filtered sequential sweep must resolve the
	// same pair stream at least this much faster than the unfiltered one.
	benchFilterSpeedup = 2.0
)

// measureWindowSweep runs each sweep case — the worker/cache matrix
// plus the external-sort spill matrix — through testing.Benchmark
// (default 1s benchtime) and returns ns/op keyed by case name. Each
// case takes the best of two rounds: the sweep is deterministic CPU
// work, so the minimum is the measurement and the gap between rounds
// is scheduler noise — single samples on busy machines drift far more
// than the regression tolerance.
func measureWindowSweep() map[string]float64 {
	out := make(map[string]float64, len(windowSweepCases)+len(spillSweepCases)+len(shardSweepCases))
	for round := 0; round < 2; round++ {
		cases := append([]struct {
			name string
			opts core.Options
		}{}, windowSweepCases...)
		cases = append(cases, spillSweepCases...)
		cases = append(cases, shardSweepCases...)
		for _, c := range cases {
			opts := c.opts
			r := testing.Benchmark(func(b *testing.B) { benchWindowSweep(b, opts) })
			if ns := float64(r.NsPerOp()); round == 0 || ns < out[c.name] {
				out[c.name] = ns
			}
		}
	}
	return out
}

func TestBenchGuard(t *testing.T) {
	record := os.Getenv("SXNM_BENCH_RECORD") == "1"
	check := os.Getenv("SXNM_BENCH_CHECK") == "1"
	merge := os.Getenv("SXNM_BENCH_MERGE")
	if !record && !check && merge == "" {
		t.Skip("set SXNM_BENCH_RECORD=1, SXNM_BENCH_CHECK=1, or SXNM_BENCH_MERGE=report.json (make bench-baseline / bench-check / bench)")
	}
	raw, err := os.ReadFile(benchBaselineFile)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	// The baseline file is the committed run report; decode it loosely
	// so recording touches only the ns/op key.
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parse %s: %v", benchBaselineFile, err)
	}

	if merge != "" {
		// Swap in a fresh run report, carrying the committed ns/op
		// baselines over: report refreshes and perf baselines have
		// independent lifecycles, and `make bench` must never eat the
		// latter as a side effect of the former.
		fresh, err := os.ReadFile(merge)
		if err != nil {
			t.Fatalf("read fresh report: %v", err)
		}
		var next map[string]any
		if err := json.Unmarshal(fresh, &next); err != nil {
			t.Fatalf("parse %s: %v", merge, err)
		}
		if ns, ok := report[benchNsKey]; ok {
			next[benchNsKey] = ns
		}
		out, err := json.MarshalIndent(next, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchBaselineFile, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("merged %s into %s, preserving %q", merge, benchBaselineFile, benchNsKey)
		return
	}
	measured := measureWindowSweep()
	for name, ns := range measured {
		t.Logf("%-16s %12.0f ns/op", name, ns)
	}

	if record {
		report[benchNsKey] = measured
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchBaselineFile, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d window-sweep baselines into %s", len(measured), benchBaselineFile)
		return
	}

	base, ok := report[benchNsKey].(map[string]any)
	if !ok {
		t.Fatalf("%s has no %q key — run `make bench-baseline` first", benchBaselineFile, benchNsKey)
	}
	spilled := map[string]bool{}
	for _, c := range spillSweepCases {
		if c.opts.SpillThresholdRows > 0 {
			spilled[c.name] = true
		}
	}
	for _, c := range shardSweepCases {
		if c.opts.SpillThresholdRows > 0 {
			spilled[c.name] = true
		}
	}
	for name := range measured {
		want, ok := base[name].(float64)
		if !ok {
			t.Errorf("baseline is missing case %q — re-run `make bench-baseline`", name)
			continue
		}
		tol := benchTolerance
		if spilled[name] {
			tol = benchSpillTolerance
		}
		got := measured[name]
		if limit := want * (1 + tol); got > limit {
			t.Errorf("%s regressed: %.0f ns/op vs baseline %.0f (+%.0f%% > %.0f%% tolerance)",
				name, got, want, (got/want-1)*100, tol*100)
		}
	}
	// The spill gate must be free when disabled: a run with
	// SpillThresholdRows=0 takes the exact in-memory path, so it may not
	// drift from the sequential sweep beyond tolerance.
	if off, seq := measured["spill-off"], measured["seq"]; off > seq*(1+benchTolerance) {
		t.Errorf("spill-off sweep %.0f ns/op is %.0f%% over the plain sequential %.0f",
			off, (off/seq-1)*100, seq)
	}
	// The shard coordination tax must stay bounded: a single-shard run
	// takes the full planner/worker/replay machinery over one range, so
	// its drift from the sequential sweep is pure overhead and may not
	// exceed the regression tolerance. On one CPU the worker and the
	// replaying coordinator cannot pipeline — every batch handoff is a
	// forced context switch — so the bar only means something with ≥2.
	if procs := runtime.GOMAXPROCS(0); procs >= 2 {
		if one, seq := measured["shards1"], measured["seq"]; one > seq*(1+benchTolerance) {
			t.Errorf("shards1 sweep %.0f ns/op is %.0f%% over the plain sequential %.0f",
				one, (one/seq-1)*100, seq)
		}
	} else {
		t.Logf("skipping shards1 overhead assertion: only %d usable CPU(s)", procs)
	}
	if procs := runtime.GOMAXPROCS(0); procs >= 4 {
		speedup := measured["seq"] / measured["workers4"]
		if speedup < benchMinSpeedup {
			t.Errorf("4-worker sweep speedup %.2fx < %.1fx on %d CPUs", speedup, benchMinSpeedup, procs)
		} else {
			t.Logf("4-worker sweep speedup: %.2fx on %d CPUs", speedup, procs)
		}
	} else {
		t.Logf("skipping %.1fx speedup assertion: only %d usable CPU(s)", benchMinSpeedup, procs)
	}
	if speedup := measured["seq"] / measured["filtered"]; speedup < benchFilterSpeedup {
		t.Errorf("filtered sweep speedup %.2fx < %.1fx over the unfiltered sequential sweep",
			speedup, benchFilterSpeedup)
	} else {
		t.Logf("filtered sweep speedup: %.2fx", speedup)
	}
	checkFilterEffect(t, report)
}

// checkFilterEffect asserts the filter is live, not vestigial: a
// filters-on detection over the movie corpus must skip a positive
// fraction of attempted comparisons, and the committed run report —
// regenerated by `make bench`, which runs the CLI with its default
// -filter=true — must carry that rate.
func checkFilterEffect(t *testing.T, report map[string]any) {
	if rate, ok := report["filter_hit_rate"].(float64); !ok || rate <= 0 {
		t.Errorf("committed %s filter_hit_rate = %v, want > 0 — re-run `make bench`",
			benchBaselineFile, report["filter_hit_rate"])
	}
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.DataSet1(5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	kg, err := core.GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(kg, cfg, core.Options{UseFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	attempted := res.Stats.Comparisons + res.Stats.FilteredOut
	if attempted == 0 || res.Stats.FilteredOut == 0 {
		t.Fatalf("filters-on movie run skipped nothing: comparisons=%d filtered=%d",
			res.Stats.Comparisons, res.Stats.FilteredOut)
	}
	t.Logf("movie-corpus filter hit rate: %.1f%% (%d of %d attempted)",
		100*float64(res.Stats.FilteredOut)/float64(attempted), res.Stats.FilteredOut, attempted)
}
