package sxnm

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/xmltree"
)

// WriteClustersCSV writes the detected duplicate groups as CSV with
// columns candidate, clusterID, elementID, text (a short description
// of the element). Singleton clusters are omitted — the CSV lists
// duplicates, not the whole partition.
func WriteClustersCSV(w io.Writer, doc *Document, res *Result) error {
	idx := doc.IndexByID()
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"candidate", "cluster", "element", "text"}); err != nil {
		return err
	}
	for _, s := range Summarize(res) {
		for _, c := range res.Clusters[s.Candidate].NonSingletons() {
			for _, eid := range c.Members {
				text := ""
				if n := idx[eid]; n != nil {
					text = truncate(n.DeepText(), 120)
				}
				if err := cw.Write([]string{
					s.Candidate,
					strconv.Itoa(c.ID),
					strconv.Itoa(eid),
					text,
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ClustersDocument renders the full cluster sets (the CS relations of
// Def. 1) as an XML document:
//
//	<sxnm-clusters>
//	  <candidate name="movie">
//	    <cluster id="1"><element id="3"/><element id="17"/></cluster>
//	    ...
//	  </candidate>
//	</sxnm-clusters>
func ClustersDocument(res *Result) *Document {
	root := xmltree.NewElement("sxnm-clusters")
	names := make([]string, 0, len(res.Clusters))
	for name := range res.Clusters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ce := xmltree.NewElement("candidate")
		ce.SetAttr("name", name)
		cs := res.Clusters[name]
		for _, c := range cs.Clusters {
			cl := xmltree.NewElement("cluster")
			cl.SetAttr("id", strconv.Itoa(c.ID))
			if len(c.Members) > 1 {
				cl.SetAttr("duplicates", "true")
			}
			for _, eid := range c.Members {
				el := xmltree.NewElement("element")
				el.SetAttr("id", strconv.Itoa(eid))
				cl.AppendChild(el)
			}
			ce.AppendChild(cl)
		}
		root.AppendChild(ce)
	}
	return xmltree.NewDocument(root)
}

// WriteStats writes the phase timings and counters in the layout of
// the paper's Experiment set 2 (KG, SW, TC, DD).
func WriteStats(w io.Writer, res *Result) error {
	st := res.Stats
	_, err := fmt.Fprintf(w,
		"KG=%v SW=%v TC=%v DD=%v comparisons=%d filtered=%d duplicate-pairs=%d\n",
		st.KeyGen, st.SlidingWindow, st.TransitiveClosure, st.DuplicateDetection(),
		st.Comparisons, st.FilteredOut, st.DuplicatePairs)
	return err
}

func truncate(s string, max int) string {
	runes := []rune(s)
	if len(runes) <= max {
		return s
	}
	return string(runes[:max]) + "..."
}
