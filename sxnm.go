// Package sxnm is the public API of this reproduction of "XML
// Duplicate Detection Using Sorted Neighborhoods" (Puhlmann, Weis,
// Naumann — EDBT 2006). It detects duplicate elements in nested XML
// data with the Sorted XML Neighborhood Method (SXNM): per-candidate
// sort keys generated from configurable character patterns, multi-pass
// sliding windows over the sorted keys, and a bottom-up similarity
// that combines weighted object descriptions with the overlap of
// already-deduplicated descendants.
//
// Quick start:
//
//	cfg, err := sxnm.LoadConfigFile("config.xml")
//	doc, err := sxnm.ParseXMLFile("data.xml")
//	det, err := sxnm.New(cfg)
//	res, err := det.Run(doc)
//	for name, cs := range res.Clusters {
//	    fmt.Println(name, cs.NonSingletons())
//	}
//
// See the examples directory for complete programs.
package sxnm

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runlimit"
	"repro/internal/xmltree"
)

// Re-exported types. The facade aliases the internal packages' types
// so callers only import this package.
type (
	// Config is the full SXNM parameter set: candidates with PATH, OD,
	// and KEY relations plus windows and thresholds.
	Config = config.Config
	// Candidate configures one XML schema element for deduplication.
	Candidate = config.Candidate
	// PathDef, ODEntry, KeyDef, and KeyPart are the rows of the
	// configuration relations of the paper's Sec. 3.2.
	PathDef = config.PathDef
	ODEntry = config.ODEntry
	KeyDef  = config.KeyDef
	KeyPart = config.KeyPart
	// RuleKind selects the duplicate classification rule.
	RuleKind = config.RuleKind

	// Document is a parsed XML document.
	Document = xmltree.Document
	// Node is an element or text node of a Document.
	Node = xmltree.Node
	// WriteOptions control Document serialization.
	WriteOptions = xmltree.WriteOptions

	// Result is the outcome of a run: cluster sets, GK tables, stats.
	Result = core.Result
	// Options tune a run (pair observation, descendant toggles,
	// custom decision rules) and its performance envelope:
	// Options.PairWorkers parallelizes the window sweep inside each
	// key pass and Options.SimCache memoizes similarity computations —
	// both produce results byte-identical to the plain sequential run.
	Options = core.Options
	// Stats carries the per-phase timings (KG, SW, TC) of the paper's
	// scalability experiments.
	Stats = core.Stats
	// PairObservation describes one window comparison, delivered to
	// Options.PairObserver.
	PairObservation = core.PairObservation

	// ClusterSet is the per-candidate duplicate partition (Def. 1).
	ClusterSet = cluster.ClusterSet
	// Pair is an unordered pair of element IDs.
	Pair = cluster.Pair

	// Limits bounds a run: wall-clock timeout, parse-time depth and
	// node ceilings, GK rows per candidate, and window comparisons.
	// The zero value is unlimited (the paper's behavior).
	Limits = core.Limits
	// Incomplete describes how far an interrupted run got; see
	// Result.Incomplete.
	Incomplete = core.Incomplete
	// LimitError names the breached limit and the observed value; it
	// matches ErrLimitExceeded via errors.Is.
	LimitError = core.LimitError
	// PanicError reports a panic recovered inside a Parallel detection
	// worker, carrying the candidate name and stack.
	PanicError = core.PanicError
)

// Typed interruption causes carried by interrupted runs alongside the
// partial Result; match with errors.Is.
var (
	ErrCanceled         = core.ErrCanceled
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	ErrLimitExceeded    = core.ErrLimitExceeded
)

// Classification rules (see config.RuleKind).
const (
	RuleCombined = config.RuleCombined
	RuleEither   = config.RuleEither
	RuleBoth     = config.RuleBoth
)

// DefaultSimCacheSize is the per-candidate similarity cache capacity
// used when Options.SimCache is on and Options.SimCacheSize is zero.
const DefaultSimCacheSize = core.DefaultSimCacheSize

// LoadConfig reads and validates an XML configuration document.
func LoadConfig(r io.Reader) (*Config, error) {
	return config.Parse(r)
}

// LoadConfigFile reads and validates the configuration at path. Every
// error is prefixed "sxnm:" and names the file.
func LoadConfigFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %w", err)
	}
	defer f.Close()
	cfg, err := config.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %s: %w", path, err)
	}
	return cfg, nil
}

// ParseXML parses an XML document from r.
func ParseXML(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseXMLWithLimits parses an XML document from r, enforcing the
// MaxDepth and MaxNodes ceilings during the token scan so hostile
// documents fail fast with a *LimitError instead of exhausting memory.
func ParseXMLWithLimits(r io.Reader, lim Limits) (*Document, error) {
	return xmltree.ParseWithLimits(r, lim)
}

// ParseXMLString parses an XML document held in a string.
func ParseXMLString(s string) (*Document, error) { return xmltree.ParseString(s) }

// ParseXMLFile parses the XML document stored at path.
func ParseXMLFile(path string) (*Document, error) { return xmltree.ParseFile(path) }

// Detector runs SXNM with a fixed configuration.
type Detector struct {
	cfg  *Config
	opts Options
}

// New validates the configuration (compiling paths, patterns, and
// keys) and returns a Detector. Candidates that declare an equational
// rule (Candidate.RuleExpr / the <rule> config element) have their
// expressions compiled here; syntax errors surface immediately. The
// configuration must not be mutated afterwards.
func New(cfg *Config) (*Detector, error) {
	return NewWithOptions(cfg, Options{})
}

// NewWithOptions is New with run options applied to every Run call. A
// FieldRule in opts takes precedence over config-declared rules.
func NewWithOptions(cfg *Config, opts Options) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg, opts: opts}
	if d.opts.FieldRule == nil {
		exprs := make(map[string]string)
		for i := range cfg.Candidates {
			if cfg.Candidates[i].RuleExpr != "" {
				exprs[cfg.Candidates[i].Name] = cfg.Candidates[i].RuleExpr
			}
		}
		if len(exprs) > 0 {
			rs, err := NewRuleSet(cfg, exprs)
			if err != nil {
				return nil, err
			}
			d.opts.FieldRule = rs.Options().FieldRule
		}
	}
	return d, nil
}

// Config returns the validated configuration.
func (d *Detector) Config() *Config { return d.cfg }

// Run executes both SXNM phases over the document and returns the
// cluster sets per candidate.
func (d *Detector) Run(doc *Document) (*Result, error) {
	return d.RunContext(context.Background(), doc)
}

// RunContext is Run under a context and the Detector's Limits (set via
// NewWithOptions): the run stops cooperatively on cancellation,
// deadline expiry, or a limit breach and returns the partial Result
// (Result.Incomplete describes how far it got) together with the typed
// cause — ErrCanceled, ErrDeadlineExceeded, or a *LimitError.
func (d *Detector) RunContext(ctx context.Context, doc *Document) (*Result, error) {
	return core.RunContext(ctx, doc, d.cfg, d.opts)
}

// RunReader parses XML from r and runs detection.
func (d *Detector) RunReader(r io.Reader) (*Result, error) {
	return d.RunReaderContext(context.Background(), r)
}

// RunReaderContext is RunReader under a context; the Detector's
// MaxDepth/MaxNodes limits are enforced while parsing.
func (d *Detector) RunReaderContext(ctx context.Context, r io.Reader) (*Result, error) {
	doc, err := d.parseObserved(r)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %w", err)
	}
	return d.RunContext(ctx, doc)
}

// parseObserved parses under the Detector's limits with the parse
// phase traced when an observer is attached.
func (d *Detector) parseObserved(r io.Reader) (*Document, error) {
	sp := d.opts.Observer.StartSpan(obs.SpanParse)
	doc, err := xmltree.ParseWithLimits(r, d.opts.Limits)
	if err != nil {
		sp.SetAttr(obs.Bool(obs.AttrInterrupted, true), obs.String(obs.AttrCause, err.Error()))
	}
	sp.End()
	return doc, err
}

// RunFile parses the file at path and runs detection.
func (d *Detector) RunFile(path string) (*Result, error) {
	return d.RunFileContext(context.Background(), path)
}

// RunFileContext is RunFile under a context. Every error is prefixed
// "sxnm:" and names the file; interrupted runs still return their
// partial Result.
func (d *Detector) RunFileContext(ctx context.Context, path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %w", err)
	}
	defer f.Close()
	doc, err := d.parseObserved(f)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %s: %w", path, err)
	}
	res, err := d.RunContext(ctx, doc)
	if err != nil {
		return res, fmt.Errorf("sxnm: %s: %w", path, err)
	}
	return res, nil
}

// RunStream executes SXNM over XML read from r without materializing
// the whole document: key generation is streaming (memory bounded by
// the largest candidate subtree), then detection runs over the GK
// tables as usual. Requires plain candidate paths (no //, *, or
// predicates). The result carries no document, so document-dependent
// helpers (Deduplicate, Fuse, WriteClustersCSV) do not apply; cluster
// sets and statistics are complete.
func (d *Detector) RunStream(r io.Reader) (*Result, error) {
	return d.RunStreamContext(context.Background(), r)
}

// RunStreamContext is RunStream under a context and the Detector's
// Limits. MaxDepth/MaxNodes are enforced on the fly during the token
// scan; an interrupted run returns the partial Result with
// Result.Incomplete set alongside the typed cause.
func (d *Detector) RunStreamContext(ctx context.Context, r io.Reader) (*Result, error) {
	ctx, stop := runlimit.WithTimeout(ctx, d.opts.Limits)
	defer stop()
	kg, err := core.GenerateKeysStreamObserved(ctx, r, d.cfg, d.opts.KeyGenLimits(), d.opts.Observer)
	if err != nil {
		if runlimit.IsInterruption(err) {
			return core.PartialFromKeyGen(kg, err), err
		}
		return nil, err
	}
	return core.DetectContext(ctx, kg, d.cfg, d.opts)
}

// RunStreamFile is RunStream over the file at path.
func (d *Detector) RunStreamFile(path string) (*Result, error) {
	return d.RunStreamFileContext(context.Background(), path)
}

// RunStreamFileContext is RunStreamFile under a context. Every error
// is prefixed "sxnm:" and names the file; interrupted runs still
// return their partial Result.
func (d *Detector) RunStreamFileContext(ctx context.Context, path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %w", err)
	}
	defer f.Close()
	res, err := d.RunStreamContext(ctx, f)
	if err != nil {
		return res, fmt.Errorf("sxnm: %s: %w", path, err)
	}
	return res, nil
}

// WriteGK runs only the key generation phase over the document and
// serializes the GK relations (the paper's temporary tables) to w, so
// detection can later run repeatedly — e.g. sweeping windows and
// thresholds — without re-reading the XML. Load with RunFromGK.
func (d *Detector) WriteGK(doc *Document, w io.Writer) error {
	kg, err := core.GenerateKeys(doc, d.cfg)
	if err != nil {
		return err
	}
	return core.WriteGK(w, kg)
}

// RunFromGK runs the detection phase over GK relations previously
// serialized by WriteGK under the same configuration.
func (d *Detector) RunFromGK(r io.Reader) (*Result, error) {
	return d.RunFromGKContext(context.Background(), r)
}

// RunFromGKContext is RunFromGK under a context and the Detector's
// Limits applied to the detection phase.
func (d *Detector) RunFromGKContext(ctx context.Context, r io.Reader) (*Result, error) {
	kg, err := core.ReadGK(r, d.cfg)
	if err != nil {
		return nil, err
	}
	return core.DetectContext(ctx, kg, d.cfg, d.opts)
}
