// Package sxnm is the public API of this reproduction of "XML
// Duplicate Detection Using Sorted Neighborhoods" (Puhlmann, Weis,
// Naumann — EDBT 2006). It detects duplicate elements in nested XML
// data with the Sorted XML Neighborhood Method (SXNM): per-candidate
// sort keys generated from configurable character patterns, multi-pass
// sliding windows over the sorted keys, and a bottom-up similarity
// that combines weighted object descriptions with the overlap of
// already-deduplicated descendants.
//
// Quick start:
//
//	cfg, err := sxnm.LoadConfigFile("config.xml")
//	doc, err := sxnm.ParseXMLFile("data.xml")
//	det, err := sxnm.New(cfg)
//	res, err := det.Run(doc)
//	for name, cs := range res.Clusters {
//	    fmt.Println(name, cs.NonSingletons())
//	}
//
// See the examples directory for complete programs.
package sxnm

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// Re-exported types. The facade aliases the internal packages' types
// so callers only import this package.
type (
	// Config is the full SXNM parameter set: candidates with PATH, OD,
	// and KEY relations plus windows and thresholds.
	Config = config.Config
	// Candidate configures one XML schema element for deduplication.
	Candidate = config.Candidate
	// PathDef, ODEntry, KeyDef, and KeyPart are the rows of the
	// configuration relations of the paper's Sec. 3.2.
	PathDef = config.PathDef
	ODEntry = config.ODEntry
	KeyDef  = config.KeyDef
	KeyPart = config.KeyPart
	// RuleKind selects the duplicate classification rule.
	RuleKind = config.RuleKind

	// Document is a parsed XML document.
	Document = xmltree.Document
	// Node is an element or text node of a Document.
	Node = xmltree.Node
	// WriteOptions control Document serialization.
	WriteOptions = xmltree.WriteOptions

	// Result is the outcome of a run: cluster sets, GK tables, stats.
	Result = core.Result
	// Options tune a run (pair observation, descendant toggles,
	// custom decision rules).
	Options = core.Options
	// Stats carries the per-phase timings (KG, SW, TC) of the paper's
	// scalability experiments.
	Stats = core.Stats
	// PairObservation describes one window comparison, delivered to
	// Options.PairObserver.
	PairObservation = core.PairObservation

	// ClusterSet is the per-candidate duplicate partition (Def. 1).
	ClusterSet = cluster.ClusterSet
	// Pair is an unordered pair of element IDs.
	Pair = cluster.Pair
)

// Classification rules (see config.RuleKind).
const (
	RuleCombined = config.RuleCombined
	RuleEither   = config.RuleEither
	RuleBoth     = config.RuleBoth
)

// LoadConfig reads and validates an XML configuration document.
func LoadConfig(r io.Reader) (*Config, error) {
	return config.Parse(r)
}

// LoadConfigFile reads and validates the configuration at path.
func LoadConfigFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %w", err)
	}
	defer f.Close()
	return config.Parse(f)
}

// ParseXML parses an XML document from r.
func ParseXML(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseXMLString parses an XML document held in a string.
func ParseXMLString(s string) (*Document, error) { return xmltree.ParseString(s) }

// ParseXMLFile parses the XML document stored at path.
func ParseXMLFile(path string) (*Document, error) { return xmltree.ParseFile(path) }

// Detector runs SXNM with a fixed configuration.
type Detector struct {
	cfg  *Config
	opts Options
}

// New validates the configuration (compiling paths, patterns, and
// keys) and returns a Detector. Candidates that declare an equational
// rule (Candidate.RuleExpr / the <rule> config element) have their
// expressions compiled here; syntax errors surface immediately. The
// configuration must not be mutated afterwards.
func New(cfg *Config) (*Detector, error) {
	return NewWithOptions(cfg, Options{})
}

// NewWithOptions is New with run options applied to every Run call. A
// FieldRule in opts takes precedence over config-declared rules.
func NewWithOptions(cfg *Config, opts Options) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg, opts: opts}
	if d.opts.FieldRule == nil {
		exprs := make(map[string]string)
		for i := range cfg.Candidates {
			if cfg.Candidates[i].RuleExpr != "" {
				exprs[cfg.Candidates[i].Name] = cfg.Candidates[i].RuleExpr
			}
		}
		if len(exprs) > 0 {
			rs, err := NewRuleSet(cfg, exprs)
			if err != nil {
				return nil, err
			}
			d.opts.FieldRule = rs.Options().FieldRule
		}
	}
	return d, nil
}

// Config returns the validated configuration.
func (d *Detector) Config() *Config { return d.cfg }

// Run executes both SXNM phases over the document and returns the
// cluster sets per candidate.
func (d *Detector) Run(doc *Document) (*Result, error) {
	return core.Run(doc, d.cfg, d.opts)
}

// RunReader parses XML from r and runs detection.
func (d *Detector) RunReader(r io.Reader) (*Result, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return d.Run(doc)
}

// RunFile parses the file at path and runs detection.
func (d *Detector) RunFile(path string) (*Result, error) {
	doc, err := xmltree.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return d.Run(doc)
}

// RunStream executes SXNM over XML read from r without materializing
// the whole document: key generation is streaming (memory bounded by
// the largest candidate subtree), then detection runs over the GK
// tables as usual. Requires plain candidate paths (no //, *, or
// predicates). The result carries no document, so document-dependent
// helpers (Deduplicate, Fuse, WriteClustersCSV) do not apply; cluster
// sets and statistics are complete.
func (d *Detector) RunStream(r io.Reader) (*Result, error) {
	kg, err := core.GenerateKeysStream(r, d.cfg)
	if err != nil {
		return nil, err
	}
	return core.Detect(kg, d.cfg, d.opts)
}

// RunStreamFile is RunStream over the file at path.
func (d *Detector) RunStreamFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sxnm: %w", err)
	}
	defer f.Close()
	return d.RunStream(f)
}

// WriteGK runs only the key generation phase over the document and
// serializes the GK relations (the paper's temporary tables) to w, so
// detection can later run repeatedly — e.g. sweeping windows and
// thresholds — without re-reading the XML. Load with RunFromGK.
func (d *Detector) WriteGK(doc *Document, w io.Writer) error {
	kg, err := core.GenerateKeys(doc, d.cfg)
	if err != nil {
		return err
	}
	return core.WriteGK(w, kg)
}

// RunFromGK runs the detection phase over GK relations previously
// serialized by WriteGK under the same configuration.
func (d *Detector) RunFromGK(r io.Reader) (*Result, error) {
	kg, err := core.ReadGK(r, d.cfg)
	if err != nil {
		return nil, err
	}
	return core.Detect(kg, d.cfg, d.opts)
}
