package sxnm

import (
	"strings"
	"testing"
)

func TestFuseMergesMissingData(t *testing.T) {
	// First movie lacks the year and the review; its duplicate carries
	// both. Fusion must keep one movie with all of title, year, people,
	// and review.
	xmlStr := `
<movie_database>
  <movies>
    <movie>
      <title>Silent River</title>
      <people><person>Keanu Reeves</person></people>
    </movie>
    <movie year="1999">
      <title>Silent Rivr</title>
      <review>A quiet film that rewards patience.</review>
      <people><person>Keanu Reeves</person></people>
    </movie>
  </movies>
</movie_database>`
	det := demoDetector(t)
	doc, err := ParseXMLString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters["movie"].NonSingletons()) != 1 {
		t.Fatalf("expected the pair to be detected:\n%s", res.Clusters["movie"])
	}
	fused := Fuse(doc, res)
	movies := fused.ElementsByPath("movie_database/movies/movie")
	if len(movies) != 1 {
		t.Fatalf("fused movie count = %d, want 1", len(movies))
	}
	m := movies[0]
	if _, ok := m.Attr("year"); !ok {
		t.Error("fused movie lost the year carried by the duplicate")
	}
	if m.FirstChildElement("review") == nil {
		t.Error("fused movie lost the review carried by the duplicate")
	}
	if m.FirstChildElement("title") == nil || m.FirstChildElement("people") == nil {
		t.Error("fused movie lost its own children")
	}
	// The original is untouched.
	if got := len(doc.ElementsByPath("movie_database/movies/movie")); got != 2 {
		t.Errorf("original mutated: %d movies", got)
	}
}

func TestFuseKeepsRepresentativeValues(t *testing.T) {
	// Both carry a year; the representative's value must win.
	xmlStr := `
<movie_database>
  <movies>
    <movie year="1999">
      <title>Silent River</title>
      <people><person>Keanu Reeves</person></people>
      <review>longer text marking this as the most complete record</review>
    </movie>
    <movie year="2001">
      <title>Silent Rivr</title>
      <people><person>Keanu Reeves</person></people>
    </movie>
  </movies>
</movie_database>`
	det := demoDetector(t)
	doc, err := ParseXMLString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(doc, res)
	movies := fused.ElementsByPath("movie_database/movies/movie")
	if len(movies) != 1 {
		t.Fatalf("fused movie count = %d", len(movies))
	}
	// The first movie has more text, so it is the representative; its
	// year survives.
	if y, _ := movies[0].Attr("year"); y != "1999" {
		t.Errorf("year = %q, want the representative's 1999", y)
	}
}

func TestFuseNoDuplicatesIsIdentity(t *testing.T) {
	xmlStr := `<movie_database><movies>
	  <movie><title>Alpha Storm</title><people><person>A</person></people></movie>
	  <movie><title>Beta Voyage</title><people><person>B</person></people></movie>
	</movies></movie_database>`
	det := demoDetector(t)
	doc, err := ParseXMLString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(doc, res)
	if got := len(fused.ElementsByPath("movie_database/movies/movie")); got != 2 {
		t.Errorf("identity fusion changed movie count to %d", got)
	}
	if !strings.Contains(fused.String(), "Alpha Storm") {
		t.Error("content lost")
	}
}
