package sxnm

// Facade-level tests for operational limits, cancellation, and
// graceful degradation — including the acceptance scenario: a short
// deadline over the large generated corpus returns promptly with a
// partial Result, while the same run uncancelled is byte-identical to
// an unlimited run.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/dataset"
)

func largeConfig(t *testing.T) *Config {
	t.Helper()
	cfg := config.DataSet3(5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestDeadlineOverLargeDataset(t *testing.T) {
	doc := dataset.DataSet3(1500, 1)

	// Reference: the unlimited run (~400ms on dev hardware).
	det, err := New(largeConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	full, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}

	const deadline = 50 * time.Millisecond
	limited, err := NewWithOptions(largeConfig(t), Options{Limits: Limits{Timeout: deadline}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	part, err := limited.RunContext(context.Background(), doc)
	elapsed := time.Since(start)

	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if part == nil || part.Incomplete == nil {
		t.Fatal("deadline breach must return a partial result with Incomplete")
	}
	if !errors.Is(part.Incomplete.Cause, ErrDeadlineExceeded) {
		t.Errorf("Incomplete.Cause = %v", part.Incomplete.Cause)
	}
	if len(part.Incomplete.Interrupted) == 0 && part.Incomplete.Phase == "" {
		t.Errorf("Incomplete must name the interrupted work: %+v", part.Incomplete)
	}
	// The acceptance bound is ~2x the deadline; the checks fire every
	// 1024 window pairs (about a millisecond of work), so the only
	// reason to miss 100ms is scheduler noise or the race detector —
	// allow 5x before failing.
	if elapsed > 5*deadline {
		t.Errorf("run took %v, want well under %v", elapsed, 5*deadline)
	}
	// Whatever completed matches the unlimited run exactly.
	for _, name := range part.Incomplete.Completed {
		if part.Clusters[name].String() != full.Clusters[name].String() {
			t.Errorf("candidate %q: partial clusters diverge", name)
		}
	}
}

func TestUncancelledRunByteIdenticalToSeed(t *testing.T) {
	doc := dataset.DataSet3(800, 1)
	det, err := New(largeConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	det2, err := New(largeConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := det2.RunContext(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if viaCtx.Incomplete != nil {
		t.Fatal("uncancelled run must be complete")
	}
	a := ClustersDocument(plain).String()
	b := ClustersDocument(viaCtx).String()
	if a != b {
		t.Error("cancelable context changed the serialized cluster output")
	}
}

func TestRunStreamContextPartialResult(t *testing.T) {
	doc := dataset.DataSet3(500, 1)
	xmlText := doc.String()
	det, err := NewWithOptions(largeConfig(t), Options{Limits: Limits{CheckEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt immediately: keygen never gets past token one
	res, err := det.RunStreamContext(ctx, strings.NewReader(xmlText))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil || res.Incomplete == nil || res.Incomplete.Phase != "key-generation" {
		t.Fatalf("want key-generation partial result, got %+v", res)
	}
}

func TestFacadeLimitErrors(t *testing.T) {
	det, err := NewWithOptions(largeConfig(t), Options{Limits: Limits{MaxDepth: 2}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = det.RunReader(strings.NewReader("<cds><disc><dtitle>x</dtitle></disc></cds>"))
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "max-depth" {
		t.Fatalf("want max-depth LimitError through the facade, got %v", err)
	}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Error("facade error should match ErrLimitExceeded")
	}
	if !strings.HasPrefix(err.Error(), "sxnm:") {
		t.Errorf("facade error should carry the sxnm: prefix: %v", err)
	}
}

func TestParseXMLWithLimits(t *testing.T) {
	_, err := ParseXMLWithLimits(strings.NewReader("<a><b><c/></b></a>"), Limits{MaxDepth: 2})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
	doc, err := ParseXMLWithLimits(strings.NewReader("<a><b/></a>"), Limits{MaxDepth: 2})
	if err != nil || doc == nil {
		t.Fatalf("within limits should parse: %v", err)
	}
}
